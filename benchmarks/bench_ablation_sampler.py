"""Sampler ablation — the optimization stack of Section III-B, plus the
method comparison (Knuth-Yao vs CDT vs rejection) of Section II-B.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core.params import P1, P2
from repro.cyclemodel.sampler_cycles import CycleKnuthYaoSampler
from repro.machine.machine import CortexM4
from repro.sampler.cdt import CdtSampler
from repro.sampler.lut_sampler import LutKnuthYaoSampler
from repro.sampler.pmat import ProbabilityMatrix
from repro.sampler.rejection import RejectionSampler
from repro.trng.bitpool import BitPool
from repro.trng.bitsource import PrngBitSource
from repro.trng.trng import (
    PESSIMISTIC_CYCLES_PER_WORD,
    SimulatedTrng,
)
from repro.trng.xorshift import Xorshift128

LADDER = [
    ("naive bit scan", dict(scan="bitwise", skip_zero_words=False,
                            use_lut1=False, use_lut2=False)),
    ("+ zero-word trim (III-B3)", dict(scan="bitwise", skip_zero_words=True,
                                       use_lut1=False, use_lut2=False)),
    ("alt: Hamming weights of [6]", dict(scan="bitwise",
                                         skip_zero_words=True,
                                         use_hamming_weights=True,
                                         use_lut1=False, use_lut2=False)),
    ("+ clz skipping (III-B4)", dict(scan="clz", skip_zero_words=True,
                                     use_lut1=False, use_lut2=False)),
    ("clz + Hamming combined", dict(scan="clz", skip_zero_words=True,
                                    use_hamming_weights=True,
                                    use_lut1=False, use_lut2=False)),
    ("+ LUT1 (III-B5)", dict(scan="clz", skip_zero_words=True,
                             use_lut1=True, use_lut2=False)),
    ("+ LUT2 (full Alg. 2)", dict(scan="clz", skip_zero_words=True,
                                  use_lut1=True, use_lut2=True)),
]


def _run_config(params, config, samples=512, cycles_per_word=None):
    machine = CortexM4()
    trng = SimulatedTrng(
        Xorshift128(5), machine=machine, cycles_per_word=cycles_per_word
    )
    pool = BitPool(trng, machine=machine)
    sampler = CycleKnuthYaoSampler(
        ProbabilityMatrix.for_params(params), params.q, machine, pool,
        **config,
    )
    sampler.sample_polynomial(samples)
    return machine.cycles / samples


def test_optimization_ladder_report(benchmark, paper_report):
    def run():
        rows = []
        for params in (P1, P2):
            for name, config in LADDER:
                rows.append(
                    [
                        f"{name} [{params.name}]",
                        round(_run_config(params, config), 1),
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    table = render_table(
        ["configuration", "cycles/sample"],
        rows,
        title="Knuth-Yao optimization ladder (paper endpoint: 28.5)",
    )
    paper_report("Ablation — sampler optimization stack", table)
    # Full configuration lands within the paper's ballpark.
    final_p1 = rows[len(LADDER) - 1][1]
    assert 20 < final_p1 < 40


def test_trng_cadence_sensitivity_report(benchmark, paper_report):
    """How the TRNG supply model affects the headline 28.5 number."""

    def run():
        full = LADDER[-1][1]
        fast = _run_config(P1, full, cycles_per_word=None)
        slow = _run_config(
            P1, full, cycles_per_word=PESSIMISTIC_CYCLES_PER_WORD
        )
        return fast, slow

    fast, slow = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    lines = [
        f"rate-matched TRNG (paper's operating point): {fast:.1f} cycles/sample",
        f"PLL48-limited TRNG (140 cycles/word):        {slow:.1f} cycles/sample",
        "paper reports 28.5 cycles/sample",
    ]
    paper_report("Ablation — TRNG cadence sensitivity", "\n".join(lines))
    assert fast < slow


def test_method_comparison_report(benchmark, paper_report):
    """Knuth-Yao vs CDT vs rejection on randomness and table budgets."""

    def run():
        pmat = ProbabilityMatrix.for_params(P1)
        rows = []

        ky_bits = PrngBitSource(Xorshift128(9))
        ky = LutKnuthYaoSampler(pmat, P1.q, ky_bits)
        n = 4000
        ky.sample_polynomial(n)
        from repro.sampler.lut_sampler import build_luts

        luts = build_luts(pmat)
        rows.append(
            [
                "Knuth-Yao (Alg. 2)",
                round(ky_bits.bits_consumed / n, 1),
                pmat.storage_bytes() + luts.lut1_bytes + luts.lut2_bytes,
            ]
        )

        cdt_bits = PrngBitSource(Xorshift128(9))
        cdt = CdtSampler(pmat.table, P1.q, cdt_bits)
        cdt.sample_polynomial(n)
        rows.append(
            ["CDT (inversion)", round(cdt_bits.bits_consumed / n, 1),
             cdt.table_bytes()]
        )

        rej_bits = PrngBitSource(Xorshift128(9))
        rej = RejectionSampler.for_params(P1, rej_bits)
        rej.sample_polynomial(n)
        rows.append(
            ["Rejection", round(rej_bits.bits_consumed / n, 1),
             (rej.tail + 1) * ((rej.precision + 7) // 8)]
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    table = render_table(
        ["method", "random bits/sample", "table bytes"],
        rows,
        title="Sampling method comparison (P1)",
    )
    paper_report("Ablation — sampling methods", table)
    # Knuth-Yao's near-optimal randomness: far fewer bits than CDT.
    assert rows[0][1] < rows[1][1] / 5


@pytest.mark.parametrize("name", ["P1", "P2"])
def test_wallclock_lut_sampler(benchmark, name):
    params = {"P1": P1, "P2": P2}[name]
    sampler = LutKnuthYaoSampler(
        ProbabilityMatrix.for_params(params),
        params.q,
        PrngBitSource(Xorshift128(3)),
    )
    values = benchmark(sampler.sample_polynomial, 256)
    assert len(values) == 256
