"""Inline-vs-worker-pool scaling benchmark with machine-readable output.

Starts the key-transport server in-process once per executor
configuration (inline, then pool sizes from ``--workers``) and drives it
with the closed-loop load generator, then writes
``BENCH_pool_scaling.json`` so later PRs can track how the sharded
executor scales.  Not collected by pytest (no ``test_`` prefix) — run
it directly:

    PYTHONPATH=src python benchmarks/bench_pool_scaling.py
    PYTHONPATH=src python benchmarks/bench_pool_scaling.py \\
        --ops encrypt --workers 1,2,4 --concurrency 32 --quick

The pool executor's win is overlap: the event loop keeps accepting and
coalescing while whole batches compute on worker processes.  That
requires spare cores — the JSON records ``cpus`` (the scheduler-visible
CPU count) next to every speedup, because on a single-core box the pool
can only add IPC overhead, never parallelism.  The PR 3 acceptance bar
(pool-4 encrypt >= 2x inline at concurrency 32, NumPy backend) is only
meaningful where ``cpus`` >= 4; CI's pool-smoke job uploads this
artifact from a multi-core runner.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro import __version__, get_parameter_set, seeded_scheme
from repro.backend import available_backends, skipped_backends_report
from repro.numpy_support import get_numpy
from repro.service.executor import pool_executor_for, serving_seed
from repro.service.loadgen import run_load
from repro.service.server import start_server

DEFAULT_OUTPUT = "BENCH_pool_scaling.json"


async def _run_one(
    params_name: str,
    backend: str,
    seed: int,
    op: str,
    workers: Optional[int],
    concurrency: int,
    requests: int,
    max_batch: int,
    max_wait_ms: float,
) -> Dict:
    """One (executor, op, concurrency) cell on a fresh server."""
    params = get_parameter_set(params_name)
    # Keygen and serving draw from domain-separated streams (see
    # repro.service.executor.serving_seed), matching the CLI.
    keypair = seeded_scheme(
        params, seed, backend=backend
    ).generate_keypair()
    scheme = seeded_scheme(
        params, serving_seed(seed), backend=backend
    )
    executor = None
    if workers is not None:
        executor = pool_executor_for(
            scheme,
            keypair,
            seed=serving_seed(seed),
            workers=workers,
            backend=backend,
        )
    server = await start_server(
        scheme,
        keypair=keypair,
        executor=executor,
        max_batch=max_batch,
        max_wait=max_wait_ms / 1e3,
    )
    try:
        load = await run_load(
            "127.0.0.1",
            server.port,
            op=op,
            concurrency=concurrency,
            requests=requests,
            message=bytes(range(32)),
        )
        stats = server.service.stats()
    finally:
        await server.close()
    row = {
        "executor": "inline" if workers is None else "pool",
        "workers": 0 if workers is None else workers,
        "op": op,
        "concurrency": concurrency,
        "requests": requests,
        "errors": load["errors"],
        "ops_per_sec": load["ops_per_sec"],
        "p50_ms": load["latency_ms"]["p50"],
        "p90_ms": load["latency_ms"]["p90"],
        "p99_ms": load["latency_ms"]["p99"],
        "mean_batch_size": stats["ops"][op]["mean_batch_size"],
        "inflight_max": stats["ops"][op]["inflight_max"],
    }
    if workers is not None:
        shards = stats["executor"]["shards"]
        row["shard_items"] = [s["items"] for s in shards]
        row["respawns"] = stats["executor"]["respawns"]
    label = "inline" if workers is None else f"pool-{workers}"
    print(
        f"  {op:<12} {label:<8} conc {concurrency:>4}  "
        f"{row['ops_per_sec']:>8.0f} ops/s  "
        f"p50 {row['p50_ms']:>7.2f}ms  p99 {row['p99_ms']:>7.2f}ms  "
        f"mean batch {row['mean_batch_size']:.1f}",
        flush=True,
    )
    return row


def _speedups(results: List[Dict]) -> List[Dict]:
    """Every pool size vs the inline baseline per (op, concurrency)."""
    speedups = []
    for base in results:
        if base["executor"] != "inline":
            continue
        for row in results:
            if (
                row["executor"] == "pool"
                and row["op"] == base["op"]
                and row["concurrency"] == base["concurrency"]
                and base["ops_per_sec"] > 0
            ):
                speedups.append(
                    {
                        "op": row["op"],
                        "concurrency": row["concurrency"],
                        "workers": row["workers"],
                        "inline_ops_per_sec": base["ops_per_sec"],
                        "pool_ops_per_sec": row["ops_per_sec"],
                        "speedup": row["ops_per_sec"]
                        / base["ops_per_sec"],
                    }
                )
    return speedups


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="inline vs worker-pool scaling benchmark"
    )
    parser.add_argument("--params", default="P1")
    parser.add_argument(
        "--backend",
        default=None,
        help="default: numpy when available, else python-reference",
    )
    parser.add_argument("--ops", default="encrypt")
    parser.add_argument(
        "--workers",
        default="1,2,4",
        help="comma-separated pool sizes (inline always runs first)",
    )
    parser.add_argument("--concurrency", default="32")
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument(
        "--requests-factor",
        type=int,
        default=16,
        help="requests per run = max(min-requests, concurrency * factor)",
    )
    parser.add_argument("--min-requests", type=int, default=128)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small grid for CI smoke (encrypt, pools 1/2, fewer requests)",
    )
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--out", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    backend = args.backend
    if backend is None:
        backend = (
            "numpy"
            if available_backends().get("numpy")
            else "python-reference"
        )
    ops = [op.strip() for op in args.ops.split(",") if op.strip()]
    pool_sizes = [int(w) for w in args.workers.split(",") if w.strip()]
    concurrency_levels = [
        int(c) for c in args.concurrency.split(",") if c.strip()
    ]
    requests_factor, min_requests = args.requests_factor, args.min_requests
    if args.quick:
        ops = ["encrypt"]
        pool_sizes = [1, 2]
        concurrency_levels = [32]
        requests_factor, min_requests = 6, 64

    cpus = os.cpu_count() or 1
    np = get_numpy()
    print(
        f"pool scaling bench: {args.params} backend={backend} "
        f"ops={','.join(ops)} cpus={cpus}",
        flush=True,
    )
    if cpus < max(pool_sizes, default=1):
        print(
            f"  note: only {cpus} CPU(s) visible; pool sizes beyond "
            f"that measure IPC overhead, not scaling",
            flush=True,
        )

    async def _grid() -> List[Dict]:
        results = []
        for op in ops:
            for concurrency in concurrency_levels:
                requests = max(
                    min_requests, concurrency * requests_factor
                )
                for workers in [None] + pool_sizes:
                    results.append(
                        await _run_one(
                            args.params,
                            backend,
                            args.seed,
                            op,
                            workers,
                            concurrency,
                            requests,
                            args.max_batch,
                            args.max_wait_ms,
                        )
                    )
        return results

    started = time.time()
    results = asyncio.run(_grid())
    speedups = _speedups(results)
    report = {
        "benchmark": "pool_scaling",
        "version": __version__,
        "python": sys.version.split()[0],
        "numpy": getattr(np, "__version__", None) if np else None,
        "cpus": cpus,
        "params": args.params,
        "backend": backend,
        "skipped_backends": skipped_backends_report(),
        "max_batch": args.max_batch,
        "max_wait_ms": args.max_wait_ms,
        "results": results,
        "speedups": speedups,
        "wall_seconds": time.time() - started,
    }

    print()
    for row in speedups:
        print(
            f"{row['op']} @ conc {row['concurrency']}: "
            f"inline {row['inline_ops_per_sec']:.0f} ops/s -> "
            f"pool-{row['workers']} {row['pool_ops_per_sec']:.0f} ops/s "
            f"= {row['speedup']:.2f}x"
        )
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2)
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
