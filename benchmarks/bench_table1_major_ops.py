"""Table I — measured results of major operations.

Regenerates every row of the paper's Table I from the cycle model (the
values printed in the terminal summary) and wall-clocks the functional
kernels with pytest-benchmark.
"""

import pytest

from repro.analysis import experiments
from repro.core.params import P1, P2
from repro.ntt.optimized import ntt_forward_packed, ntt_inverse_packed
from repro.ntt.parallel import ntt_forward_parallel3
from repro.ntt.polymul import ntt_multiply
from repro.ntt.reference import ntt_forward
from repro.sampler.lut_sampler import LutKnuthYaoSampler
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitsource import PrngBitSource
from repro.trng.xorshift import Xorshift128

PARAMS = {"P1": P1, "P2": P2}


@pytest.mark.parametrize("name", ["P1", "P2"])
def test_wallclock_ntt_forward(benchmark, random_polys, name):
    params = PARAMS[name]
    a = random_polys[name][0]
    result = benchmark(ntt_forward, a, params)
    assert len(result) == params.n


@pytest.mark.parametrize("name", ["P1", "P2"])
def test_wallclock_ntt_forward_packed(benchmark, random_polys, name):
    params = PARAMS[name]
    a = random_polys[name][0]
    result = benchmark(ntt_forward_packed, a, params)
    assert result == ntt_forward(a, params)


@pytest.mark.parametrize("name", ["P1", "P2"])
def test_wallclock_ntt_inverse_packed(benchmark, random_polys, name):
    params = PARAMS[name]
    a = random_polys[name][0]
    result = benchmark(ntt_inverse_packed, a, params)
    assert len(result) == params.n


@pytest.mark.parametrize("name", ["P1", "P2"])
def test_wallclock_parallel_ntt(benchmark, random_polys, name):
    params = PARAMS[name]
    a, b, c = random_polys[name]
    A, B, C = benchmark(ntt_forward_parallel3, a, b, c, params)
    assert len(A) == len(B) == len(C) == params.n


@pytest.mark.parametrize("name", ["P1", "P2"])
def test_wallclock_knuth_yao_sampling(benchmark, name):
    params = PARAMS[name]
    sampler = LutKnuthYaoSampler(
        ProbabilityMatrix.for_params(params),
        params.q,
        PrngBitSource(Xorshift128(1)),
    )
    poly = benchmark(sampler.sample_polynomial, params.n)
    assert len(poly) == params.n


@pytest.mark.parametrize("name", ["P1", "P2"])
def test_wallclock_ntt_multiplication(benchmark, random_polys, name):
    params = PARAMS[name]
    a, b, _ = random_polys[name]
    result = benchmark(ntt_multiply, a, b, params, "packed")
    assert len(result) == params.n


def test_table1_cycle_model_report(benchmark, paper_report):
    """Regenerate Table I (cycle model) and register it for printing."""
    table = benchmark.pedantic(
        experiments.table1, rounds=1, iterations=1, warmup_rounds=0
    )
    paper_report("Table I — major operations (cycle model vs paper)", table)
    # Shape assertions: every measured value within 50% of the paper.
    for params in (P1, P2):
        result = experiments.measure_major_operations(params)
        for op, measured in result.measured.items():
            paper = result.paper[op]
            assert 0.5 * paper < measured < 1.5 * paper, (params.name, op)
