"""Table II — scheme operations: cycles, flash tables, RAM.

The RAM column reproduces the paper's numbers exactly (buffer + stack
decomposition); cycle counts come from the full-scheme cycle models.
"""

import pytest

from repro.analysis import experiments
from repro.core.params import P1, P2
from repro import seeded_scheme

PARAMS = {"P1": P1, "P2": P2}


@pytest.mark.parametrize("name", ["P1", "P2"])
def test_wallclock_keygen(benchmark, name):
    scheme = seeded_scheme(PARAMS[name], seed=1, ntt="packed")
    pair = benchmark(scheme.generate_keypair)
    assert len(pair.public.a_hat) == PARAMS[name].n


@pytest.mark.parametrize("name", ["P1", "P2"])
def test_wallclock_encrypt(benchmark, name):
    params = PARAMS[name]
    scheme = seeded_scheme(params, seed=2, ntt="packed")
    pair = scheme.generate_keypair()
    message = bytes(range(params.message_bytes))
    ct = benchmark(scheme.encrypt, pair.public, message)
    assert len(ct.c1_hat) == params.n


@pytest.mark.parametrize("name", ["P1", "P2"])
def test_wallclock_decrypt(benchmark, name):
    params = PARAMS[name]
    scheme = seeded_scheme(params, seed=3, ntt="packed")
    pair = scheme.generate_keypair()
    message = bytes(range(params.message_bytes))
    ct = scheme.encrypt(pair.public, message)
    result = benchmark(scheme.decrypt, pair.private, ct)
    assert result == message


def test_table2_cycle_model_report(benchmark, paper_report):
    table = benchmark.pedantic(
        experiments.table2, rounds=1, iterations=1, warmup_rounds=0
    )
    paper_report("Table II — scheme operations (cycle model vs paper)", table)
    for params in (P1, P2):
        result = experiments.measure_scheme_operations(params)
        # RAM must match the paper exactly; encryption cycles within 15%.
        for op, (paper_cycles, _, paper_ram) in result.paper.items():
            assert result.ram_bytes[op] == paper_ram, (params.name, op)
        enc = result.cycles["Encryption"]
        paper_enc = result.paper["Encryption"][0]
        assert 0.85 * paper_enc < enc < 1.15 * paper_enc


def test_table2_scaling_claims(benchmark, paper_report):
    """The paper's prose claims around Table II."""
    p1 = benchmark.pedantic(
        experiments.measure_scheme_operations,
        args=(P1,),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    p2 = experiments.measure_scheme_operations(P2)
    lines = []
    for op in ("Key Generation", "Encryption", "Decryption"):
        growth = p2.cycles[op] / p1.cycles[op] - 1
        lines.append(f"{op}: P2/P1 growth {growth:+.0%} (paper: +117..126%)")
        assert 0.5 < growth < 1.5
    ratio = p1.cycles["Decryption"] / p1.cycles["Encryption"]
    lines.append(
        f"Decryption/Encryption [P1]: {ratio:.2f} (paper: 0.36)"
    )
    assert ratio < 0.5
    paper_report("Table II — scaling claims", "\n".join(lines))
