"""Run-table experiment runner over the ``/metrics`` surface.

muBench-style methodology: expand a factor grid — engine x backend x
params x named-key count x hot-LRU capacity x client concurrency —
into a run table, execute every cell against a fresh in-process server
with a live Prometheus listener attached, and record both the driver's
own measurements (ops/s, exact percentiles) and the numbers scraped
from ``/metrics`` (validated round-trip, instrumentation cross-check:
the scraped request counter must equal the driver's completed count).
Writes ``BENCH_runtable.json`` plus a flat ``BENCH_runtable.csv`` for
spreadsheet/pandas consumption, and ``benchmarks/compare.py`` gates a
fresh artifact against the committed baseline in CI.  Not collected by
pytest (no ``test_`` prefix) — run it directly:

    PYTHONPATH=src python benchmarks/runner.py --smoke
    PYTHONPATH=src python benchmarks/runner.py \\
        --engines inline,pool:2 --keys-grid 0,8 --concurrency 16,64

``--smoke`` shrinks the grid to a seconds-long CI-sized table (inline
engine, one backend, two key counts) — the artifact the CI
metrics-smoke job feeds to ``compare.py``.
"""

from __future__ import annotations

import argparse
import asyncio
import csv
import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro import __version__, get_parameter_set, seeded_scheme
from repro.backend import available_backends, skipped_backends_report
from repro.metrics import (
    MetricsHttpServer,
    parse_exposition,
    scrape,
    validate_families,
)
from repro.service.executor import pool_executor_for, serving_seed
from repro.service.loadgen import (
    connect_with_retry,
    histogram_summary,
    latency_summary,
)
from repro.service.protocol import ServiceError
from repro.service.server import start_server

DEFAULT_OUTPUT = "BENCH_runtable.json"
PAYLOAD = b"runtable-experiment-payload"

#: Columns of the flat CSV, in order.
CSV_COLUMNS = (
    "params",
    "backend",
    "engine",
    "workers",
    "keys",
    "hot_capacity",
    "concurrency",
    "requests",
    "completed",
    "errors",
    "ops_per_sec",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "hist_p50_ms",
    "hist_p95_ms",
    "hist_p99_ms",
    "mean_batch_size",
    "scraped_requests",
    "scrape_families",
    "scrape_valid",
)


def parse_engine_factor(engine: str) -> Tuple[str, int]:
    """``"inline"`` -> ("inline", 0); ``"pool:N"`` -> ("pool", N)."""
    engine = engine.strip()
    if engine == "inline":
        return "inline", 0
    kind, _, workers_text = engine.partition(":")
    if kind != "pool":
        raise SystemExit(
            f"error: unknown engine {engine!r}; use inline or pool[:N]"
        )
    workers = int(workers_text) if workers_text else (os.cpu_count() or 1)
    if workers < 1:
        raise SystemExit(f"error: pool workers must be >= 1: {engine!r}")
    return "pool", workers


def expand_run_table(
    params_list: List[str],
    backends: List[str],
    engines: List[Tuple[str, int]],
    keys_grid: List[int],
    hot_grid: List[int],
    concurrency_grid: List[int],
) -> List[Dict]:
    """The full factor cross-product, one dict per cell."""
    table = []
    for params in params_list:
        for backend in backends:
            for engine, workers in engines:
                for keys in keys_grid:
                    for hot in hot_grid:
                        for concurrency in concurrency_grid:
                            table.append(
                                {
                                    "params": params,
                                    "backend": backend,
                                    "engine": engine,
                                    "workers": workers,
                                    "keys": keys,
                                    "hot_capacity": hot,
                                    "concurrency": concurrency,
                                }
                            )
    return table


def cell_id(cell: Dict) -> Tuple:
    """The factor tuple compare.py matches baseline cells by."""
    return (
        cell["params"],
        cell["backend"],
        cell["engine"],
        cell["workers"],
        cell["keys"],
        cell["hot_capacity"],
        cell["concurrency"],
    )


def _scrape_summary(text: str, op: str) -> Dict:
    """Validate one exposition and pull the cross-check numbers."""
    families = parse_exposition(text)
    problems = validate_families(families, require_naming=True)
    requests_ok = 0
    requests_family = families.get("repro_requests_total")
    if requests_family is not None:
        for sample in requests_family.samples:
            if (
                sample.labels.get("op") == op
                and sample.labels.get("status") == "ok"
            ):
                requests_ok += int(sample.value)
    return {
        "scraped_requests": requests_ok,
        "scrape_families": len(families),
        "scrape_valid": not problems,
        "scrape_problems": problems,
    }


async def run_cell(
    cell: Dict,
    *,
    seed: int,
    requests: int,
    max_batch: int,
    max_wait_ms: float,
) -> Dict:
    """Execute one run-table cell and return its result row."""
    params = get_parameter_set(cell["params"])
    scheme = seeded_scheme(params, serving_seed(seed), backend=cell["backend"])
    executor = None
    keypair = None
    if cell["engine"] == "pool":
        keypair = seeded_scheme(
            params, seed, backend=cell["backend"]
        ).generate_keypair()
        executor = pool_executor_for(
            scheme,
            keypair,
            seed=serving_seed(seed),
            workers=cell["workers"],
            backend=cell["backend"],
        )
    server = await start_server(
        scheme,
        max_batch=max_batch,
        max_wait=max_wait_ms / 1e3,
        keypair=keypair,
        executor=executor,
        keystore_seed=seed,
        hot_keys=cell["hot_capacity"],
    )
    metrics_server = MetricsHttpServer(server.service.metrics.registry)
    await metrics_server.start()
    try:
        client = await connect_with_retry("127.0.0.1", server.port, 10.0)
        try:
            names = [f"cell-{i}" for i in range(cell["keys"])]
            for name in names:
                await client.create_key(name)
                # Materialize outside the timed loop: key generation
                # is a one-time cost, not routing throughput.
                await client.key_public_key(name)

            latencies: List[float] = []
            errors = 0
            counter = {"next": 0}

            async def one() -> None:
                nonlocal errors
                index = counter["next"]
                counter["next"] += 1
                started = time.perf_counter()
                try:
                    if names:
                        await client.key_encrypt(
                            names[index % len(names)], 0, PAYLOAD
                        )
                    else:
                        await client.encrypt(PAYLOAD)
                except (ServiceError, ConnectionError, OSError):
                    errors += 1
                else:
                    latencies.append(time.perf_counter() - started)

            async def worker(count: int) -> None:
                for _ in range(count):
                    await one()

            concurrency = cell["concurrency"]
            per_worker = [requests // concurrency] * concurrency
            for i in range(requests % concurrency):
                per_worker[i] += 1
            wall_start = time.perf_counter()
            await asyncio.gather(*(worker(n) for n in per_worker))
            wall = time.perf_counter() - wall_start

            exposition = await scrape("127.0.0.1", metrics_server.port)
            stats = server.service.stats()
        finally:
            await client.close()
    finally:
        await metrics_server.close()
        await server.close()

    op = "key_encrypt" if cell["keys"] else "encrypt"
    if cell["keys"]:
        fused = stats["fused"].get("encrypt", {})
        mean_batch = fused.get("mean_rows_per_window", 0.0)
    else:
        mean_batch = stats["ops"]["encrypt"]["mean_batch_size"]
    exact = latency_summary(latencies)
    hist = histogram_summary(latencies)
    row = dict(
        cell,
        requests=requests,
        completed=len(latencies),
        errors=errors,
        wall_seconds=wall,
        ops_per_sec=len(latencies) / wall if wall > 0 else 0.0,
        p50_ms=exact["p50"],
        p95_ms=exact["p95"],
        p99_ms=exact["p99"],
        hist_p50_ms=hist["p50"],
        hist_p95_ms=hist["p95"],
        hist_p99_ms=hist["p99"],
        mean_batch_size=mean_batch,
        **_scrape_summary(exposition, op),
    )
    return row


async def run_table(table: List[Dict], args) -> List[Dict]:
    rows = []
    for index, cell in enumerate(table):
        row = await run_cell(
            cell,
            seed=args.seed,
            requests=max(args.min_requests, cell["concurrency"] * args.requests_factor),
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
        )
        rows.append(row)
        check = "scrape OK" if row["scrape_valid"] else "SCRAPE INVALID"
        engine = (
            f"pool:{row['workers']}"
            if row["engine"] == "pool"
            else "inline"
        )
        print(
            f"  [{index + 1}/{len(table)}] {row['params']} "
            f"{row['backend']:<16} {engine:<8} keys {row['keys']:>2} "
            f"hot {row['hot_capacity']:>2} conc {row['concurrency']:>3}  "
            f"{row['ops_per_sec']:>8.0f} ops/s  "
            f"p50 {row['p50_ms']:>7.2f}ms  p99 {row['p99_ms']:>7.2f}ms  "
            f"batch {row['mean_batch_size']:>5.1f}  {check}",
            flush=True,
        )
    return rows


def write_csv(path: str, rows: List[Dict]) -> None:
    with open(path, "w", encoding="utf-8", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(CSV_COLUMNS)
        for row in rows:
            writer.writerow([row[column] for column in CSV_COLUMNS])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="run-table experiment runner (scrapes /metrics per cell)"
    )
    parser.add_argument("--params", default="P1", help="comma-separated")
    parser.add_argument(
        "--backends",
        default=None,
        help="comma-separated; default: numpy when available, else "
        "python-reference",
    )
    parser.add_argument(
        "--engines",
        default="inline",
        help="comma-separated engine factors: inline, pool[:N]",
    )
    parser.add_argument(
        "--keys-grid",
        default="0,8",
        help="comma-separated named-key counts (0 = default key)",
    )
    parser.add_argument(
        "--hot-grid",
        default="8",
        help="comma-separated hot-LRU capacities",
    )
    parser.add_argument("--concurrency", default="16,64")
    parser.add_argument(
        "--requests-factor",
        type=int,
        default=8,
        help="requests per cell = max(min-requests, concurrency * factor)",
    )
    parser.add_argument("--min-requests", type=int, default=64)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--out", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--csv",
        default=None,
        help="CSV output path (default: --out with a .csv suffix)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-long CI grid: inline engine, one backend, "
        "keys 0/4, concurrency 16",
    )
    args = parser.parse_args(argv)

    default_backend = (
        "numpy"
        if available_backends().get("numpy")
        else "python-reference"
    )
    if args.smoke:
        params_list = ["P1"]
        backends = [default_backend]
        engines = [("inline", 0)]
        keys_grid = [0, 4]
        hot_grid = [8]
        concurrency_grid = [16]
        args.requests_factor = min(args.requests_factor, 6)
        args.min_requests = min(args.min_requests, 64)
    else:
        params_list = [p.strip() for p in args.params.split(",") if p.strip()]
        backends = (
            [b.strip() for b in args.backends.split(",") if b.strip()]
            if args.backends
            else [default_backend]
        )
        engines = [
            parse_engine_factor(e)
            for e in args.engines.split(",")
            if e.strip()
        ]
        keys_grid = [int(k) for k in args.keys_grid.split(",") if k.strip()]
        hot_grid = [int(h) for h in args.hot_grid.split(",") if h.strip()]
        concurrency_grid = [
            int(c) for c in args.concurrency.split(",") if c.strip()
        ]

    table = expand_run_table(
        params_list, backends, engines, keys_grid, hot_grid, concurrency_grid
    )
    print(
        f"run table: {len(table)} cell(s) "
        f"({len(params_list)} params x {len(backends)} backend(s) x "
        f"{len(engines)} engine(s) x {len(keys_grid)} key count(s) x "
        f"{len(hot_grid)} hot cap(s) x {len(concurrency_grid)} "
        f"concurrency level(s))",
        flush=True,
    )
    started = time.time()
    rows = asyncio.run(run_table(table, args))

    invalid = [row for row in rows if not row["scrape_valid"]]
    for row in invalid:
        for problem in row["scrape_problems"]:
            print(
                f"error: scrape invalid for {cell_id(row)}: {problem}",
                file=sys.stderr,
            )
    mismatched = [
        row for row in rows if row["scraped_requests"] != row["completed"]
    ]
    for row in mismatched:
        print(
            f"error: {cell_id(row)} scraped "
            f"{row['scraped_requests']} ok-requests but the driver "
            f"completed {row['completed']}",
            file=sys.stderr,
        )

    report = {
        "benchmark": "runtable",
        "version": __version__,
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
        "seed": args.seed,
        "max_batch": args.max_batch,
        "max_wait_ms": args.max_wait_ms,
        "smoke": args.smoke,
        "factors": {
            "params": params_list,
            "backends": backends,
            "engines": [
                e if w == 0 else f"{e}:{w}" for e, w in engines
            ],
            "keys": keys_grid,
            "hot_capacity": hot_grid,
            "concurrency": concurrency_grid,
        },
        "skipped_backends": skipped_backends_report(),
        "cells": rows,
        "wall_seconds": time.time() - started,
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2)
    csv_path = args.csv
    if csv_path is None:
        csv_path = (
            args.out[: -len(".json")] + ".csv"
            if args.out.endswith(".json")
            else args.out + ".csv"
        )
    write_csv(csv_path, rows)
    print(f"\nwrote {args.out} and {csv_path}")
    if invalid or mismatched:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
