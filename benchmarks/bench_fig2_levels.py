"""Fig. 2 — accumulated DDG termination probability per level."""

import pytest

from repro.analysis import experiments
from repro.core.params import P1, P2
from repro.sampler.ddg import level_profile, lut_failure_probability
from repro.sampler.pmat import ProbabilityMatrix


def test_fig2_report(benchmark, paper_report):
    figure = benchmark.pedantic(
        experiments.fig2, rounds=1, iterations=1, warmup_rounds=0
    )
    paper_report("Fig. 2 — DDG level termination probability", figure)
    profile = level_profile(ProbabilityMatrix.for_params(P1))
    acc = profile.accumulated_floats()
    assert acc[7] == pytest.approx(0.9727, abs=5e-4)
    assert acc[12] == pytest.approx(0.9987, abs=5e-4)


def test_lut_design_points_report(benchmark, paper_report):
    """Why LUT1 covers 8 levels and LUT2 five more (Section III-B5)."""
    pmat = benchmark.pedantic(
        ProbabilityMatrix.for_params,
        args=(P1,),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    lines = []
    for levels in (4, 8, 13, 16):
        fail = float(lut_failure_probability(pmat, levels))
        lines.append(
            f"P[walk survives {levels:2d} levels] = {fail:.4%}"
        )
    paper_report("Fig. 2 — LUT design points", "\n".join(lines))
    assert float(lut_failure_probability(pmat, 8)) < 0.03
    assert float(lut_failure_probability(pmat, 13)) < 0.0015


@pytest.mark.parametrize("name", ["P1", "P2"])
def test_wallclock_level_profile(benchmark, name):
    params = {"P1": P1, "P2": P2}[name]
    pmat = ProbabilityMatrix.for_params(params)
    profile = benchmark(level_profile, pmat)
    assert profile.internal_nodes[-1] == 0
