"""Fig. 1 — probability-matrix structure and zero-word trimming."""

import pytest

from repro.analysis import experiments
from repro.core.params import P1, P2
from repro.sampler.pmat import ProbabilityMatrix


def test_fig1_report(benchmark, paper_report):
    figure = benchmark.pedantic(
        experiments.fig1, rounds=1, iterations=1, warmup_rounds=0
    )
    paper_report("Fig. 1 — probability matrix storage", figure)
    pmat = ProbabilityMatrix.for_params(P1)
    # The figures the paper states for s = 11.31.
    assert pmat.rows == 55
    assert pmat.columns == 109
    assert pmat.total_bits == 5995
    assert pmat.total_words == 218
    assert 170 <= pmat.stored_words <= 184  # paper: 180


@pytest.mark.parametrize("name", ["P1", "P2"])
def test_wallclock_matrix_construction(benchmark, name):
    params = {"P1": P1, "P2": P2}[name]
    pmat = benchmark.pedantic(
        ProbabilityMatrix.for_sigma,
        args=(params.sigma,),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert pmat.columns == 109


def test_trimming_savings_report(benchmark, paper_report):
    pmat = benchmark.pedantic(
        ProbabilityMatrix.for_params,
        args=(P1,),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    saved = pmat.total_words - pmat.stored_words
    lines = [
        f"words without trimming: {pmat.total_words} (paper: 218)",
        f"words stored:           {pmat.stored_words} (paper: 180)",
        f"zero words elided:      {saved} ({saved / pmat.total_words:.0%})",
        f"flash for matrix:       {pmat.storage_bytes()} B",
    ]
    paper_report("Fig. 1 — zero-word trimming", "\n".join(lines))
