"""CI perf-regression gate over run-table artifacts.

Compares a freshly-generated ``BENCH_runtable.json`` against the
committed baseline and fails (exit 1) when any matched cell regressed
in throughput by more than ``--threshold`` (default 20%).

CI runners and the machine that produced the committed baseline are
different hardware, so raw ops/s are not comparable.  The default mode
therefore *normalizes*: it computes the fresh/baseline throughput
ratio per cell, divides every ratio by the median ratio (which cancels
the overall machine-speed factor), and flags cells whose normalized
ratio falls below ``1 - threshold`` — i.e. cells that got slower
*relative to the rest of the grid*.  A uniform slowdown (slower
hardware) passes; a lopsided one (a regression in one configuration)
fails.  ``--absolute`` skips the normalization for same-machine
comparisons.

Cells are matched by their full factor tuple (params, backend, engine,
workers, keys, hot capacity, concurrency); cells present in only one
artifact are reported but not gated.  Any fresh cell with driver
errors or an invalid ``/metrics`` scrape fails the gate outright.

    PYTHONPATH=src python benchmarks/runner.py --smoke --out /tmp/fresh.json
    PYTHONPATH=src python benchmarks/compare.py \\
        --baseline BENCH_runtable.json --fresh /tmp/fresh.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from typing import Dict, List, Tuple

FACTOR_KEYS = (
    "params",
    "backend",
    "engine",
    "workers",
    "keys",
    "hot_capacity",
    "concurrency",
)


def load_cells(path: str) -> Dict[Tuple, Dict]:
    """Index one artifact's cells by factor tuple."""
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    if report.get("benchmark") != "runtable":
        raise SystemExit(
            f"error: {path} is not a runtable artifact "
            f"(benchmark={report.get('benchmark')!r})"
        )
    cells = {}
    for cell in report.get("cells", []):
        key = tuple(cell[k] for k in FACTOR_KEYS)
        if key in cells:
            raise SystemExit(f"error: {path} has duplicate cell {key}")
        cells[key] = cell
    if not cells:
        raise SystemExit(f"error: {path} has no cells")
    return cells


def describe(key: Tuple) -> str:
    return " ".join(f"{name}={value}" for name, value in zip(FACTOR_KEYS, key))


def gate(
    baseline: Dict[Tuple, Dict],
    fresh: Dict[Tuple, Dict],
    *,
    threshold: float,
    absolute: bool,
) -> int:
    failures: List[str] = []

    for key, cell in sorted(fresh.items()):
        if cell.get("errors"):
            failures.append(
                f"{describe(key)}: {cell['errors']} driver error(s)"
            )
        if not cell.get("scrape_valid", True):
            failures.append(f"{describe(key)}: /metrics scrape invalid")

    matched = sorted(set(baseline) & set(fresh))
    only_baseline = sorted(set(baseline) - set(fresh))
    only_fresh = sorted(set(fresh) - set(baseline))
    for key in only_baseline:
        print(f"note: baseline-only cell (not gated): {describe(key)}")
    for key in only_fresh:
        print(f"note: fresh-only cell (not gated): {describe(key)}")
    if not matched:
        print("error: no cells in common; nothing to gate", file=sys.stderr)
        return 1

    ratios = {}
    for key in matched:
        base_ops = baseline[key]["ops_per_sec"]
        fresh_ops = fresh[key]["ops_per_sec"]
        if base_ops <= 0:
            print(
                f"note: zero-throughput baseline cell skipped: "
                f"{describe(key)}"
            )
            continue
        ratios[key] = fresh_ops / base_ops
    if not ratios:
        print("error: no comparable cells", file=sys.stderr)
        return 1

    median_ratio = statistics.median(ratios.values())
    scale = 1.0 if absolute else median_ratio
    if scale <= 0:
        print(
            f"error: non-positive median ratio {median_ratio:.3f}",
            file=sys.stderr,
        )
        return 1
    mode = "absolute" if absolute else f"median-normalized (x{median_ratio:.3f})"
    print(
        f"comparing {len(ratios)} cell(s), threshold {threshold:.0%}, "
        f"{mode}"
    )

    floor = 1.0 - threshold
    for key in sorted(ratios):
        ratio = ratios[key]
        normalized = ratio / scale
        marker = "OK "
        if normalized < floor:
            marker = "REG"
            failures.append(
                f"{describe(key)}: throughput "
                f"{baseline[key]['ops_per_sec']:.0f} -> "
                f"{fresh[key]['ops_per_sec']:.0f} ops/s "
                f"(normalized ratio {normalized:.2f} < {floor:.2f})"
            )
        print(
            f"  [{marker}] {describe(key)}  "
            f"{baseline[key]['ops_per_sec']:>8.0f} -> "
            f"{fresh[key]['ops_per_sec']:>8.0f} ops/s  "
            f"ratio {ratio:.2f}  normalized {normalized:.2f}"
        )

    if failures:
        print(f"\nFAIL: {len(failures)} problem(s)", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nPASS: no cell regressed beyond the threshold")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="perf-regression gate over runtable artifacts"
    )
    parser.add_argument(
        "--baseline",
        default="BENCH_runtable.json",
        help="committed baseline artifact",
    )
    parser.add_argument(
        "--fresh", required=True, help="freshly-generated artifact"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="max tolerated per-cell throughput regression (0.20 = 20%%)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="compare raw ratios without median normalization "
        "(same-machine artifacts only)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.threshold < 1.0:
        raise SystemExit(
            f"error: --threshold must be in (0, 1), got {args.threshold}"
        )
    return gate(
        load_cells(args.baseline),
        load_cells(args.fresh),
        threshold=args.threshold,
        absolute=args.absolute,
    )


if __name__ == "__main__":
    sys.exit(main())
