"""NTT ablation — quantifying each optimization of Sections III-C/D.

Not a paper table per se, but the paper's engineering claims:

* packing + two-fold unrolling reduce memory ops / loop overhead by 50%
  (Alg. 3 vs Alg. 4);
* fusing the three encryption NTTs saves ~8.3% versus three runs.
"""

import pytest

from repro.trng.stream import DeterministicRng

from repro.analysis.tables import render_table
from repro.core.params import P1, P2
from repro.cyclemodel.ntt_cycles import (
    ntt_forward_alg3,
    ntt_forward_packed,
    ntt_forward_parallel3,
    ntt_inverse_packed,
)
from repro.machine.machine import CortexM4


def _polys(params, count):
    rng = DeterministicRng(7)
    return [rng.poly(params.n, params.q) for _ in range(count)]


def _ablation_rows(params):
    a, b, c = _polys(params, 3)
    rows = []
    _, alg3 = CortexM4().measure(ntt_forward_alg3, a, params)
    rows.append([f"Alg. 3 reference [{params.name}]", alg3, 1.0])
    _, packed = CortexM4().measure(ntt_forward_packed, a, params)
    rows.append(
        [f"Alg. 4 packed+unrolled [{params.name}]", packed, packed / alg3]
    )
    _, inv = CortexM4().measure(ntt_inverse_packed, a, params)
    rows.append([f"Inverse packed [{params.name}]", inv, inv / alg3])
    _, par3 = CortexM4().measure(ntt_forward_parallel3, a, b, c, params)
    rows.append(
        [
            f"Parallel 3x fused [{params.name}]",
            par3,
            par3 / (3 * alg3),
        ]
    )
    return rows, alg3, packed, par3


def test_ntt_ablation_report(benchmark, paper_report):
    all_rows = []

    def run():
        rows = []
        for params in (P1, P2):
            rows.extend(_ablation_rows(params)[0])
        return rows

    all_rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    table = render_table(
        ["variant", "cycles", "vs Alg.3 (per transform)"],
        all_rows,
        title="NTT ablation (cycle model)",
    )
    paper_report("Ablation — NTT optimizations", table)


@pytest.mark.parametrize("params", [P1, P2], ids=["P1", "P2"])
def test_packing_saves(benchmark, params):
    _, alg3, packed, par3 = benchmark.pedantic(
        _ablation_rows, args=(params,), rounds=1, iterations=1,
        warmup_rounds=0,
    )
    assert packed < alg3
    # The claimed savings target memory ops and loop overhead (about
    # half the kernel): expect a 10-25% end-to-end gain.
    assert 0.70 < packed / alg3 < 0.95
    # Parallel saving vs three separate runs: 5-20% band around the
    # paper's 8.3%.
    saving = 1 - par3 / (3 * alg3)
    assert 0.05 < saving < 0.20


def test_numpy_table_cache_reuse_and_speedup(paper_report):
    """Pin the NumPy-backend table caches (twiddles + bit-reversal).

    Two guarantees: (a) every backend instance in the process shares one
    packed table set per (n, q) — the FO-KEM builds schemes per
    encapsulation, so repacking would be a per-request cost; (b) a warm
    transform is measurably faster than one that rebuilds its tables,
    pinned with a generous margin so the assertion is not flaky on
    loaded CI runners.
    """
    np = pytest.importorskip("numpy")
    import time

    from repro.backend.numpy_backend import (
        NumpyBackend,
        _ARRAY_TABLE_CACHE,
        array_table_cache_info,
    )
    from repro.ntt import roots
    from repro.ntt.bitrev import _bit_reverse_table_cached

    # (a) cache identity across instances, keyed by parameter set.
    first, second = NumpyBackend(), NumpyBackend()
    for params in (P1, P2):
        assert first._array_tables(params) is second._array_tables(params)
    assert array_table_cache_info()["entries"] >= 2
    hits_before = _bit_reverse_table_cached.cache_info().hits
    first._array_tables(P1)
    from repro.ntt.bitrev import bit_reverse_table

    bit_reverse_table(P1.n)
    assert _bit_reverse_table_cached.cache_info().hits > hits_before

    # (b) warm vs cold transform timing.
    rng = DeterministicRng(11)
    matrix = [rng.poly(P2.n, P2.q) for _ in range(8)]
    backend = NumpyBackend()
    backend.ntt_forward_batch(matrix, P2)  # prime every cache
    rounds = 5
    warm = time.perf_counter()
    for _ in range(rounds):
        backend.ntt_forward_batch(matrix, P2)
    warm = time.perf_counter() - warm
    cold = 0.0
    for _ in range(rounds):
        _ARRAY_TABLE_CACHE.clear()
        roots._TABLE_CACHE.clear()
        _bit_reverse_table_cached.cache_clear()
        started = time.perf_counter()
        backend.ntt_forward_batch(matrix, P2)
        cold += time.perf_counter() - started
    # Rebuilding the tables costs multiples of a warm transform; 1.5x
    # leaves headroom for scheduler noise.
    assert cold > 1.5 * warm, (cold, warm)
    paper_report(
        "Ablation — NumPy table caching",
        (
            f"warm transform: {warm / rounds * 1e3:.3f} ms, "
            f"with table rebuild: {cold / rounds * 1e3:.3f} ms "
            f"({cold / warm:.1f}x)"
        ),
    )


def test_memory_access_counting(benchmark, paper_report):
    """Count raw loads/stores per kernel to exhibit the 50% claim
    directly (the cost model's load/store categories)."""

    class CountingMachine(CortexM4):
        def __init__(self):
            super().__init__()
            self.loads = 0
            self.stores = 0

        def load(self, count=1):
            self.loads += count
            super().load(count)

        def store(self, count=1):
            self.stores += count
            super().store(count)

    (a,) = _polys(P1, 1)

    def run():
        m1 = CountingMachine()
        ntt_forward_alg3(m1, a, P1)
        m2 = CountingMachine()
        ntt_forward_packed(m2, a, P1)
        return m1, m2

    m1, m2 = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    lines = [
        f"Alg. 3 memory accesses: {m1.loads + m1.stores}",
        f"Alg. 4 memory accesses: {m2.loads + m2.stores}",
        (
            "reduction: "
            f"{1 - (m2.loads + m2.stores) / (m1.loads + m1.stores):.0%} "
            "(paper claims 50% for the butterfly loop)"
        ),
    ]
    paper_report("Ablation — memory access counts", "\n".join(lines))
    # Butterfly traffic halves; bit-reversal and twiddle loads dilute
    # the end-to-end number below the ideal 50%.
    assert m2.loads + m2.stores < 0.70 * (m1.loads + m1.stores)
