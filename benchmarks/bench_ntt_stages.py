"""Per-stage NTT kernel profile + multicore utilization benchmark.

Profiles the compiled kernel tier the way the multicore NTT studies
plot their kernels: wall time per transform phase (bit-reversal, each
butterfly stage ``m = 2 .. n``, the final reduction pass, the inverse
scale multiply) measured *inside* the C library with a monotonic
clock, plus Python-side pointwise-op timing, plus a thread-scaling
sweep (1/2/4/8 threads) with per-thread utilization.  Not collected by
pytest (no ``test_`` prefix) — run it directly:

    PYTHONPATH=src python benchmarks/bench_ntt_stages.py
    PYTHONPATH=src python benchmarks/bench_ntt_stages.py \\
        --params P1,P2 --rows 256 --threads 1,2,4,8

Writes ``BENCH_ntt_stages.json``.  The report also records the
single-message encrypt time of every usable backend tier and the
compiled-over-numpy speedup (the PR's headline number), the host CPU
count (utilization on a 1-CPU runner is expected to be flat), and a
``skipped_backends`` map naming every unusable tier with a
human-readable reason.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.backend import (
    available_backends,
    get_backend,
    skipped_backends_report,
)
from repro.core.params import PARAMETER_SETS
from repro.core.scheme import RlweEncryptionScheme
from repro.trng.bitsource import PrngBitSource
from repro.trng.xorshift import Xorshift128

DEFAULT_OUTPUT = "BENCH_ntt_stages.json"

#: The encrypt-speedup target pinned by this PR (compiled over numpy,
#: one message per call).
TARGET_COMPILED_SPEEDUP = 5.0


def _deterministic_rows(np, rows: int, params):
    """A reproducible (rows, n) operand batch, no wall-clock entropy."""
    bits = PrngBitSource(Xorshift128(2015))
    flat = [bits.bits(31) % params.q for _ in range(rows * params.n)]
    return np.asarray(flat, dtype=np.int64).reshape(rows, params.n)


def profile_stages(backend, params, rows: int, repeats: int):
    """Mean per-stage seconds over ``repeats`` profiled transforms."""
    np = backend.np
    matrix = _deterministic_rows(np, rows, params)
    totals: dict = {}
    for direction in ("forward", "inverse"):
        inverse = direction == "inverse"
        acc = {}
        for _ in range(repeats):
            _, stage_seconds = backend.ntt_batch_profiled(
                matrix, params, inverse=inverse
            )
            for stage, seconds in stage_seconds.items():
                acc[stage] = acc.get(stage, 0.0) + seconds
        totals[direction] = {
            stage: seconds / repeats for stage, seconds in acc.items()
        }
    return totals


def profile_pointwise(backend, params, rows: int, repeats: int):
    """Python-side wall seconds per batched pointwise op."""
    np = backend.np
    a = _deterministic_rows(np, rows, params)
    b = _deterministic_rows(np, rows, params)
    out = {}
    for op_name in ("pointwise_mul_batch",
                    "pointwise_add_batch",
                    "pointwise_sub_batch"):
        op = getattr(backend, op_name)
        op(a, b, params)  # warm tables
        started = time.perf_counter()
        for _ in range(repeats):
            op(a, b, params)
        out[op_name] = (time.perf_counter() - started) / repeats
    return out


def thread_sweep(backend, params, rows: int, threads, repeats: int):
    """Batched forward NTT across thread counts; utilization vs 1."""
    kernel = backend._kernel
    np = backend.np
    matrix = _deterministic_rows(np, rows, params)
    results = []
    base_seconds = None
    for count in threads:
        work = matrix.copy()
        kernel.ntt_batch(work, params, inverse=False, threads=count)
        best = float("inf")
        for _ in range(repeats):
            work = matrix.copy()
            started = time.perf_counter()
            kernel.ntt_batch(work, params, inverse=False, threads=count)
            best = min(best, time.perf_counter() - started)
        if base_seconds is None:
            base_seconds = best
        speedup = base_seconds / best if best else 0.0
        results.append(
            {
                "threads": count,
                "seconds": best,
                "speedup_vs_1": speedup,
                "utilization": speedup / count,
            }
        )
    return results


def encrypt_ms(backend_name: str, params, repeats: int) -> float:
    """Best-of-repeats single-message encrypt milliseconds."""
    scheme = RlweEncryptionScheme(
        params,
        bits=PrngBitSource(Xorshift128(2015)),
        backend=get_backend(backend_name),
    )
    keypair = scheme.generate_keypair()
    message = bytes(range(params.message_bytes))
    scheme.encrypt(keypair.public, message)  # warm caches/tables
    iters = 50
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        for _ in range(iters):
            scheme.encrypt(keypair.public, message)
        best = min(best, (time.perf_counter() - started) / iters)
    return best * 1e3


def run_stage_bench(
    params_names, rows: int, threads, repeats: int, encrypt_repeats: int
):
    usable = available_backends()
    report = {
        "benchmark": "ntt_stages",
        "cpus": os.cpu_count(),
        "rows": rows,
        "repeats": repeats,
        "target_compiled_speedup": TARGET_COMPILED_SPEEDUP,
        "skipped_backends": skipped_backends_report(),
        "results": {},
        "encrypt_ms": {},
        "encrypt_speedups": {},
    }
    compiled_ok = usable.get("compiled", False)
    for name in params_names:
        params = PARAMETER_SETS[name]
        entry = {}
        if compiled_ok:
            backend = get_backend("compiled")
            if backend._kernel.supports(params):
                entry["stages"] = profile_stages(
                    backend, params, rows, repeats
                )
                entry["pointwise"] = profile_pointwise(
                    backend, params, rows, repeats
                )
                entry["thread_sweep"] = thread_sweep(
                    backend, params, rows, threads, repeats
                )
            else:
                entry["skipped"] = (
                    f"q = {params.q} outside the compiled kernel's range"
                )
        else:
            entry["skipped"] = report["skipped_backends"].get(
                "compiled", "compiled backend unavailable"
            )
        report["results"][name] = entry

        per_backend = {}
        for backend_name in ("python-reference", "numpy", "compiled"):
            if usable.get(backend_name, False):
                per_backend[backend_name] = encrypt_ms(
                    backend_name, params, encrypt_repeats
                )
        report["encrypt_ms"][name] = per_backend
        if "numpy" in per_backend and "compiled" in per_backend:
            report["encrypt_speedups"][name] = {
                "compiled_vs_numpy": (
                    per_backend["numpy"] / per_backend["compiled"]
                ),
                "numpy_vs_reference": (
                    per_backend.get("python-reference", 0.0)
                    / per_backend["numpy"]
                    if "python-reference" in per_backend
                    else None
                ),
            }
    return report


def render(report) -> str:
    lines = [
        f"NTT stage profile — cpus={report['cpus']}, "
        f"rows={report['rows']}"
    ]
    for name, reason in report["skipped_backends"].items():
        lines.append(f"skipped {name}: {reason}")
    for params_name, entry in report["results"].items():
        if "skipped" in entry:
            lines.append(f"[{params_name}] skipped: {entry['skipped']}")
            continue
        forward = entry["stages"]["forward"]
        total = sum(forward.values())
        lines.append(f"[{params_name}] forward NTT, per-stage share:")
        for stage, seconds in forward.items():
            share = seconds / total if total else 0.0
            lines.append(
                f"  {stage:<12} {seconds * 1e6:9.1f} us  {share:6.1%}"
            )
        for row in entry["thread_sweep"]:
            lines.append(
                f"  threads={row['threads']}: {row['seconds'] * 1e3:.3f} ms"
                f"  speedup {row['speedup_vs_1']:.2f}x"
                f"  utilization {row['utilization']:.0%}"
            )
    for params_name, per_backend in report["encrypt_ms"].items():
        parts = ", ".join(
            f"{backend}={ms:.3f} ms" for backend, ms in per_backend.items()
        )
        lines.append(f"[{params_name}] encrypt: {parts}")
        speedups = report["encrypt_speedups"].get(params_name)
        if speedups:
            lines.append(
                f"[{params_name}] compiled vs numpy: "
                f"{speedups['compiled_vs_numpy']:.2f}x "
                f"(target >= {report['target_compiled_speedup']:.1f}x)"
            )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="per-stage NTT kernel profile (JSON-emitting)"
    )
    parser.add_argument("--params", default="P1,P2")
    parser.add_argument("--rows", type=int, default=256)
    parser.add_argument("--threads", default="1,2,4,8")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--encrypt-repeats", type=int, default=5)
    parser.add_argument("--out", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--check-target",
        action="store_true",
        help="exit non-zero if compiled misses the encrypt-speedup "
        "target on every measured parameter set",
    )
    args = parser.parse_args(argv)

    started = time.time()
    report = run_stage_bench(
        params_names=[
            p.strip() for p in args.params.split(",") if p.strip()
        ],
        rows=args.rows,
        threads=[int(t) for t in args.threads.split(",") if t.strip()],
        repeats=args.repeats,
        encrypt_repeats=args.encrypt_repeats,
    )
    report["wall_seconds"] = time.time() - started

    print(render(report))
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2)
    print(f"\nwrote {args.out}")

    if args.check_target:
        speedups = [
            entry["compiled_vs_numpy"]
            for entry in report["encrypt_speedups"].values()
        ]
        if not speedups:
            print("no compiled/numpy pair measured; target not checked")
            return 1
        best = max(speedups)
        if best < TARGET_COMPILED_SPEEDUP:
            print(
                f"FAIL: best compiled speedup {best:.2f}x < "
                f"{TARGET_COMPILED_SPEEDUP:.1f}x target"
            )
            return 1
        print(f"target met: {best:.2f}x >= {TARGET_COMPILED_SPEEDUP:.1f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
