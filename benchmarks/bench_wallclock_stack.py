"""Wall-clock benchmarks of the remaining functional stack.

These are Python-speed regression benchmarks (never a paper claim): the
schoolbook-vs-NTT crossover, serialization, and the statistical tooling.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core.params import P1
from repro.core.serialize import (
    deserialize_ciphertext,
    serialize_ciphertext,
)
from repro import seeded_scheme
from repro.ntt.polymul import ntt_multiply, schoolbook_negacyclic


def test_wallclock_schoolbook_p1(benchmark, random_polys):
    a, b, _ = random_polys["P1"]
    result = benchmark.pedantic(
        schoolbook_negacyclic, args=(a, b, P1), rounds=2, iterations=1,
        warmup_rounds=0,
    )
    assert len(result) == P1.n


def test_wallclock_ntt_multiply_p1(benchmark, random_polys):
    a, b, _ = random_polys["P1"]
    result = benchmark(ntt_multiply, a, b, P1, "packed")
    assert len(result) == P1.n


def test_ntt_vs_schoolbook_crossover_report(benchmark, paper_report):
    """NTT multiplication beats schoolbook already at small n in
    operation counts; show the modelled complexity ratio."""
    from repro.core.params import custom_parameter_set

    def run():
        rows = []
        for n, q in ((16, 97), (64, 257), (256, 7681)):
            params = (
                P1 if (n, q) == (256, 7681) else custom_parameter_set(n, q, 11.31)
            )
            # Count multiplication operations analytically: schoolbook
            # n^2 vs NTT ~ 3 * (n/2) log n + n.
            school_ops = n * n
            import math

            ntt_ops = 3 * (n // 2) * int(math.log2(n)) + n
            rows.append([f"n={n}", school_ops, ntt_ops,
                         round(school_ops / ntt_ops, 1)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    table = render_table(
        ["ring size", "schoolbook mults", "NTT-path mults", "ratio"],
        rows,
        title="Multiplication operation counts",
    )
    paper_report("Wall-clock — schoolbook vs NTT operation counts", table)
    assert rows[-1][3] > 10  # n=256: NTT wins by an order of magnitude


def test_wallclock_serialization(benchmark):
    scheme = seeded_scheme(P1, seed=44)
    pair = scheme.generate_keypair()
    ct = scheme.encrypt(pair.public, b"bench")

    def roundtrip():
        return deserialize_ciphertext(serialize_ciphertext(ct))

    restored = benchmark(roundtrip)
    assert restored.c1_hat == ct.c1_hat


def test_wallclock_full_roundtrip(benchmark):
    scheme = seeded_scheme(P1, seed=45, ntt="packed")
    pair = scheme.generate_keypair()
    message = bytes(range(32))

    def roundtrip():
        ct = scheme.encrypt(pair.public, message)
        return scheme.decrypt(pair.private, ct)

    result = benchmark.pedantic(
        roundtrip, rounds=3, iterations=1, warmup_rounds=0
    )
    assert result == message
