"""Benchmark-suite plumbing.

Each bench module does two things:

* wall-clock benchmarks of the functional kernels via pytest-benchmark
  (Python speed — NOT a paper claim, provided for regression tracking);
* regeneration of the corresponding paper table/figure from the cycle
  model, registered through the ``paper_report`` fixture and printed in
  the terminal summary so ``pytest benchmarks/ --benchmark-only`` emits
  every reproduced table.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from repro.trng.stream import DeterministicRng

_REPORTS: List[Tuple[str, str]] = []


@pytest.fixture
def paper_report():
    """Register a rendered table for the end-of-run summary."""

    def register(title: str, body: str) -> None:
        _REPORTS.append((title, body))

    return register


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction tables")
    seen = set()
    for title, body in _REPORTS:
        if title in seen:
            continue
        seen.add(title)
        terminalreporter.write_line("")
        terminalreporter.write_line(f"### {title}")
        for line in body.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def bench_rng():
    return DeterministicRng(0xBEEF)


@pytest.fixture(scope="session")
def random_polys(bench_rng) -> Dict[str, list]:
    """One fixed random polynomial triple per parameter set."""
    from repro.core.params import P1, P2

    out = {}
    for params in (P1, P2):
        out[params.name] = [
            bench_rng.poly(params.n, params.q) for _ in range(3)
        ]
    return out
