"""Table IV — full-scheme comparison, including the ECIES estimate."""

from repro.analysis import experiments
from repro.baselines.ecies import (
    ecies_encrypt_estimate,
    point_multiplication_estimate,
)


def test_table4_report(benchmark, paper_report):
    table = benchmark.pedantic(
        experiments.table4, rounds=1, iterations=1, warmup_rounds=0
    )
    paper_report("Table IV — scheme comparison", table)


def test_table4_headline_factors(benchmark, paper_report):
    factors = benchmark.pedantic(
        experiments.table4_headline_factors,
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    lines = [
        (
            "encryption speedup vs ARM7TDMI [12]: "
            f"{factors['encrypt_vs_arm7tdmi']:.2f}x (paper: 7.25x)"
        ),
        (
            "decryption speedup vs ARM7TDMI [12]: "
            f"{factors['decrypt_vs_arm7tdmi']:.2f}x (paper: 5.22x)"
        ),
        (
            "ECIES-233 encryption / ring-LWE encryption: "
            f"{factors['ecies_vs_encrypt']:.1f}x (paper: >10x)"
        ),
    ]
    paper_report("Table IV — headline factors", "\n".join(lines))
    assert factors["encrypt_vs_arm7tdmi"] > 6.0
    assert factors["decrypt_vs_arm7tdmi"] > 4.5
    assert factors["ecies_vs_encrypt"] > 10.0


def test_wallclock_ecies_point_mult(benchmark):
    """Wall-clock of the actual K-233 ladder (the modelled operation)."""
    est = benchmark.pedantic(
        point_multiplication_estimate, rounds=3, iterations=1,
        warmup_rounds=0,
    )
    assert abs(est.relative_error) < 0.05


def test_ecies_estimate_report(benchmark, paper_report):
    est = benchmark.pedantic(
        point_multiplication_estimate, rounds=1, iterations=1,
        warmup_rounds=0,
    )
    lines = [
        f"K-233 ladder field ops: {est.field_ops}",
        (
            f"modelled point mult: {est.cycles:,} cycles "
            f"(literature [19]: {est.literature_cycles:,}, "
            f"error {est.relative_error:+.2%})"
        ),
        f"ECIES encrypt estimate: {ecies_encrypt_estimate():,} cycles "
        "(paper: 5,523,280)",
    ]
    paper_report("Table IV — ECIES substrate detail", "\n".join(lines))
