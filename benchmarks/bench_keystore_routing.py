"""Keystore routing benchmark (and the CI rotation smoke driver).

Two modes:

**Benchmark** (default) — starts in-process servers and measures
closed-loop keyed-encrypt throughput as traffic spreads across hot
keys: a default-key baseline, then round-robin traffic over
1/2/4/8/16/32/64 named keys.  With cross-key fused windows every cell
shares ONE coalescer window per op, so the sweep checks that ops/s
stays flat and batch occupancy stays at ``max_batch`` no matter how
many keys are hot (each cell records ``keys_per_window`` and
``batch_occupancy`` from the server's fused stats).  An
eviction-pressure cell (8 keys through a 2-slot hot cache) keeps the
PR 5 thrash comparison point.  Writes
``BENCH_keystore_routing.json``.  Not collected by pytest (no
``test_`` prefix) — run it directly:

    PYTHONPATH=src python benchmarks/bench_keystore_routing.py
    PYTHONPATH=src python benchmarks/bench_keystore_routing.py --quick

**Smoke** (``--smoke``) — drives a *running* server (the CI
keystore-smoke job): create N keys, closed-loop load round-robin
across all of them while a rotator advances one key every
``--rotate-every`` seconds.  Stale-generation rejections are re-pinned
and retried — the client-side rotation protocol — and the run fails if
any operation is terminally dropped:

    rlwe-repro serve --port 8470 --engine pool:2 &
    PYTHONPATH=src python benchmarks/bench_keystore_routing.py \\
        --smoke --engine tcp://127.0.0.1:8470 --keys 8 \\
        --duration 6 --rotate-every 1
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from typing import Dict, List

from repro import __version__, get_parameter_set, seeded_scheme
from repro.backend import available_backends, skipped_backends_report
from repro.service.loadgen import connect_with_retry, percentile
from repro.service.protocol import (
    STATUS_STALE_KEY_GENERATION,
    ServiceError,
)
from repro.service.server import start_server

DEFAULT_OUTPUT = "BENCH_keystore_routing.json"
PAYLOAD = b"keystore-routing-payload"


# ----------------------------------------------------------------------
# Benchmark mode (in-process servers)
# ----------------------------------------------------------------------
async def _measure_cell(
    params_name: str,
    backend: str,
    seed: int,
    *,
    keys: int,
    hot_capacity: int,
    concurrency: int,
    requests: int,
    max_batch: int,
    max_wait_ms: float,
) -> Dict:
    """One cell: ops/s of keyed round-robin encrypt on a fresh server.

    ``keys=0`` is the default-key baseline: the same traffic through
    the unkeyed opcode, i.e. exactly one coalescer window.
    """
    scheme = seeded_scheme(
        get_parameter_set(params_name), seed, backend=backend
    )
    server = await start_server(
        scheme,
        max_batch=max_batch,
        max_wait=max_wait_ms / 1e3,
        keystore_seed=seed,
        hot_keys=hot_capacity,
    )
    try:
        client = await connect_with_retry("127.0.0.1", server.port, 10.0)
        try:
            names = [f"bench-{i}" for i in range(keys)]
            for name in names:
                await client.create_key(name)
                # Materialize outside the timed loop: key generation
                # is a one-time cost, not routing throughput.
                await client.key_public_key(name)

            latencies: List[float] = []
            errors = 0
            counter = {"next": 0}

            async def one() -> None:
                nonlocal errors
                index = counter["next"]
                counter["next"] += 1
                started = time.perf_counter()
                try:
                    if names:
                        name = names[index % len(names)]
                        await client.key_encrypt(name, 0, PAYLOAD)
                    else:
                        await client.encrypt(PAYLOAD)
                except (ServiceError, ConnectionError, OSError):
                    errors += 1
                else:
                    latencies.append(time.perf_counter() - started)

            async def worker(count: int) -> None:
                for _ in range(count):
                    await one()

            per_worker = [requests // concurrency] * concurrency
            for i in range(requests % concurrency):
                per_worker[i] += 1
            wall_start = time.perf_counter()
            await asyncio.gather(*(worker(n) for n in per_worker))
            wall = time.perf_counter() - wall_start
            stats = await client.stats()
        finally:
            await client.close()
    finally:
        await server.close()

    ordered = sorted(latencies)
    keystore = stats["keystore"]
    row = {
        "keys": keys,
        "hot_capacity": hot_capacity,
        "concurrency": concurrency,
        "requests": requests,
        "completed": len(latencies),
        "errors": errors,
        "ops_per_sec": len(latencies) / wall if wall > 0 else 0.0,
        "p50_ms": percentile(ordered, 50) * 1e3,
        "p99_ms": percentile(ordered, 99) * 1e3,
        "materializations": keystore["materializations"],
        "evictions": keystore["evictions"],
    }
    if keys:
        fused = stats["fused"].get("encrypt", {})
        row["mean_batch_size"] = fused.get("mean_rows_per_window", 0.0)
        row["keys_per_window"] = fused.get("keys_per_window", 0.0)
    else:
        row["mean_batch_size"] = stats["ops"]["encrypt"][
            "mean_batch_size"
        ]
        row["keys_per_window"] = 1.0
    row["batch_occupancy"] = (
        row["mean_batch_size"] / max_batch if max_batch else 0.0
    )
    label = f"{keys} key(s)" if keys else "default key"
    print(
        f"  {label:<12} hot {hot_capacity:>2}  conc {concurrency:>3}  "
        f"{row['ops_per_sec']:>8.0f} ops/s  "
        f"p50 {row['p50_ms']:>7.2f}ms  p99 {row['p99_ms']:>7.2f}ms  "
        f"mean batch {row['mean_batch_size']:.1f} "
        f"({row['batch_occupancy']:.0%})  "
        f"keys/window {row['keys_per_window']:.1f}  "
        f"evictions {row['evictions']}",
        flush=True,
    )
    return row


async def _run_bench(args) -> Dict:
    key_counts = [int(k) for k in args.keys_grid.split(",") if k.strip()]
    results = []
    print(
        f"keystore routing: {args.params} on {args.backend}, "
        f"concurrency {args.concurrency}, {args.requests} requests/cell"
    )
    # Baseline: the pre-keystore single window.
    results.append(
        await _measure_cell(
            args.params,
            args.backend,
            args.seed,
            keys=0,
            hot_capacity=max(key_counts),
            concurrency=args.concurrency,
            requests=args.requests,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
        )
    )
    # The key sweep: one FUSED window regardless of key count.
    for keys in key_counts:
        results.append(
            await _measure_cell(
                args.params,
                args.backend,
                args.seed,
                keys=keys,
                hot_capacity=max(key_counts),
                concurrency=args.concurrency,
                requests=args.requests,
                max_batch=args.max_batch,
                max_wait_ms=args.max_wait_ms,
            )
        )
    # Eviction pressure: pinned at 8 keys / 2 hot slots so the cell
    # stays comparable with the pre-fusion (PR 5) number.
    thrash_keys = min(8, max(key_counts))
    if thrash_keys >= 4:
        results.append(
            await _measure_cell(
                args.params,
                args.backend,
                args.seed,
                keys=thrash_keys,
                hot_capacity=2,
                concurrency=args.concurrency,
                requests=args.requests,
                max_batch=args.max_batch,
                max_wait_ms=args.max_wait_ms,
            )
        )

    baseline = results[0]["ops_per_sec"]
    comparisons = [
        {
            "keys": row["keys"],
            "hot_capacity": row["hot_capacity"],
            "ops_per_sec": row["ops_per_sec"],
            "vs_single_window": (
                row["ops_per_sec"] / baseline if baseline > 0 else 0.0
            ),
        }
        for row in results[1:]
    ]
    return {
        "benchmark": "keystore_routing",
        "version": __version__,
        "params": args.params,
        "backend": args.backend,
        "skipped_backends": skipped_backends_report(),
        "cpus": os.cpu_count(),
        "max_batch": args.max_batch,
        "max_wait_ms": args.max_wait_ms,
        "seed": args.seed,
        "results": results,
        "comparisons": comparisons,
    }


# ----------------------------------------------------------------------
# Smoke mode (a running server; the CI keystore-smoke job)
# ----------------------------------------------------------------------
async def _run_smoke(args) -> int:
    host, port = args.host, args.port
    if args.engine:
        prefix = "tcp://"
        if not args.engine.startswith(prefix):
            raise SystemExit(
                f"error: --engine must be tcp://host:port, "
                f"got {args.engine!r}"
            )
        host, _, port_text = args.engine[len(prefix) :].rpartition(":")
        port = int(port_text)

    client = await connect_with_retry(host, port, args.connect_timeout)
    try:
        names = [f"smoke-{i}" for i in range(args.keys)]
        for name in names:
            await client.create_key(name)
        generations = {name: 0 for name in names}
        counters = {"ok": 0, "stale_retries": 0, "dropped": 0}
        rotations = []
        loop = asyncio.get_running_loop()
        stop_at = loop.time() + args.duration

        async def worker(index: int) -> None:
            step = index
            while loop.time() < stop_at:
                name = names[step % len(names)]
                step += 1
                # Pin whatever generation we currently believe in; a
                # stale rejection re-pins and retries — the op is
                # *retried*, never dropped.
                for _ in range(10):
                    generation = generations[name]
                    try:
                        await client.key_encrypt(
                            name, generation, PAYLOAD
                        )
                        counters["ok"] += 1
                        break
                    except ServiceError as exc:
                        if (
                            exc.status
                            != STATUS_STALE_KEY_GENERATION
                        ):
                            counters["dropped"] += 1
                            break
                        counters["stale_retries"] += 1
                        current, _ = await client.key_public_key(name)
                        generations[name] = max(
                            generations[name], current
                        )
                    except (ConnectionError, OSError):
                        counters["dropped"] += 1
                        break
                else:
                    counters["dropped"] += 1

        async def rotator() -> None:
            turn = 0
            while loop.time() + args.rotate_every < stop_at:
                await asyncio.sleep(args.rotate_every)
                name = names[turn % len(names)]
                turn += 1
                info = await client.rotate_key(name)
                generations[name] = max(
                    generations[name], info["generation"]
                )
                rotations.append((name, info["generation"]))

        tasks = [worker(i) for i in range(args.concurrency)]
        if args.rotate_every > 0:
            tasks.append(rotator())
        started = time.perf_counter()
        await asyncio.gather(*tasks)
        wall = time.perf_counter() - started

        listing = await client.list_keys()
        stats = await client.stats()
    finally:
        await client.close()

    by_name = {info["name"]: info for info in listing}
    print(
        f"keystore smoke: {counters['ok']} ops ok "
        f"({counters['ok'] / wall:.0f} ops/s), "
        f"{len(rotations)} rotation(s), "
        f"{counters['stale_retries']} stale retr{'y' if counters['stale_retries'] == 1 else 'ies'}, "
        f"{counters['dropped']} dropped"
    )
    for name, generation in rotations:
        observed = by_name[name]["generation"]
        assert observed >= generation, (
            f"{name} listed at generation {observed} < rotated "
            f"{generation}"
        )
    print(
        "generations after rotation:",
        {
            info["name"]: info["generation"]
            for info in listing
            if info["name"]
        },
    )
    executor = stats.get("executor", {})
    if executor.get("kind") == "pool":
        print(
            f"pool: {executor['alive']}/{executor['workers']} workers, "
            f"{executor['key_installs']} key install(s), "
            f"{executor['key_refetches']} refetch(es)"
        )
    fused = stats.get("fused", {}).get("encrypt", {})
    if fused.get("windows"):
        print(
            f"fused encrypt: {int(fused['windows'])} window(s), "
            f"mean rows {fused['mean_rows_per_window']:.1f}"
            f"/{int(fused['max_batch'])}, "
            f"keys/window {fused['keys_per_window']:.1f}, "
            f"max keys {int(fused['max_keys_in_window'])}"
        )
    if counters["ok"] == 0:
        print("error: no operation completed", file=sys.stderr)
        return 1
    if args.rotate_every > 0 and len(rotations) == 0:
        print("error: no rotation landed mid-load", file=sys.stderr)
        return 1
    if counters["dropped"]:
        print(
            f"error: {counters['dropped']} operation(s) dropped",
            file=sys.stderr,
        )
        return 1
    if args.min_batch_fraction > 0:
        mean_rows = fused.get("mean_rows_per_window", 0.0)
        max_batch = fused.get("max_batch", 0)
        floor = args.min_batch_fraction * max_batch
        if not max_batch or mean_rows < floor:
            print(
                f"error: fused encrypt mean batch {mean_rows:.1f} < "
                f"{args.min_batch_fraction:.2f} x max_batch "
                f"{max_batch} — cross-key fusion is not filling "
                f"windows",
                file=sys.stderr,
            )
            return 1
        print(
            f"fusion floor OK: {mean_rows:.1f} >= {floor:.1f} rows/window"
        )
    print("zero dropped ops — smoke OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="keystore routing benchmark / rotation smoke"
    )
    parser.add_argument("--params", default="P1")
    parser.add_argument(
        "--backend",
        default=None,
        help="default: numpy when available, else python-reference",
    )
    parser.add_argument(
        "--keys-grid",
        default="1,2,4,8,16,32,64",
        help="comma-separated named-key counts (bench mode)",
    )
    parser.add_argument("--concurrency", type=int, default=32)
    parser.add_argument("--requests", type=int, default=256)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--out", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small grid for CI (keys 1,4; fewer requests)",
    )
    # Smoke mode
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="drive a running server: rotate under load, fail on drops",
    )
    parser.add_argument("--engine", default=None)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8470)
    parser.add_argument("--keys", type=int, default=8)
    parser.add_argument("--duration", type=float, default=6.0)
    parser.add_argument(
        "--rotate-every",
        type=float,
        default=1.0,
        help="seconds between rotations in smoke mode; 0 disables the "
        "rotator (and the rotations>0 requirement)",
    )
    parser.add_argument(
        "--min-batch-fraction",
        type=float,
        default=0.0,
        help="smoke mode: fail unless the fused encrypt window's mean "
        "batch size is at least this fraction of max_batch (0 = off)",
    )
    parser.add_argument("--connect-timeout", type=float, default=30.0)
    args = parser.parse_args(argv)

    if args.smoke:
        return asyncio.run(_run_smoke(args))

    if args.backend is None:
        args.backend = (
            "numpy"
            if available_backends().get("numpy")
            else "python-reference"
        )
    if args.quick:
        args.keys_grid = "1,4"
        args.requests = min(args.requests, 128)
    report = asyncio.run(_run_bench(args))
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2)
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
