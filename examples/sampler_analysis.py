#!/usr/bin/env python3
"""Deep-dive into the Knuth-Yao sampler: distribution quality, DDG-tree
structure (Fig. 2), LUT behaviour, and the randomness budget.

    python examples/sampler_analysis.py
"""

from repro.analysis.stats import (
    centered,
    chi_square_goodness_of_fit,
    count_samples,
    empirical_moments,
)
from repro.core.params import P1
from repro.sampler.ddg import (
    exact_output_distribution,
    level_profile,
    lut_failure_probability,
)
from repro.sampler.lut_sampler import LutKnuthYaoSampler, build_luts
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitsource import PrngBitSource
from repro.trng.xorshift import Xorshift128

SAMPLES = 50_000


def main():
    params = P1
    pmat = ProbabilityMatrix.for_params(params)
    print(f"parameter set {params.describe()}")
    print(
        f"probability matrix: {pmat.rows} rows x {pmat.columns} columns "
        f"({pmat.total_bits} bits), {pmat.stored_words}/{pmat.total_words} "
        f"words stored after zero-word trimming"
    )

    # --- DDG structure (Fig. 2) ----------------------------------------
    profile = level_profile(pmat)
    print(f"\nexpected DDG walk depth: {profile.expected_level():.2f} levels")
    acc = profile.accumulated_floats()
    for level in (4, 8, 13):
        print(f"  P[terminated within {level:2d} levels] = {acc[level - 1]:.4%}")
    print(
        f"  LUT1 (8 levels) miss rate: "
        f"{float(lut_failure_probability(pmat, 8)):.4%}"
    )

    # --- LUT construction ----------------------------------------------
    luts = build_luts(pmat)
    print(
        f"\nLUT1: {luts.lut1_bytes} entries "
        f"({luts.lut1_failure_entries} failure entries); "
        f"LUT2: {luts.lut2_bytes} entries "
        f"(max post-LUT1 distance d = {luts.max_failure_distance1})"
    )

    # --- Empirical sampling ----------------------------------------------
    bits = PrngBitSource(Xorshift128(2718))
    sampler = LutKnuthYaoSampler(pmat, params.q, bits)
    values = sampler.sample_polynomial(SAMPLES)
    signed = [centered(v, params.q) for v in values]
    moments = empirical_moments(signed)
    print(f"\n{SAMPLES} samples drawn:")
    print(f"  mean      = {moments['mean']:+.4f} (target 0)")
    print(
        f"  variance  = {moments['variance']:.4f} "
        f"(target sigma^2 = {params.sigma ** 2:.4f})"
    )
    print(
        f"  LUT1/LUT2/scan hits: {sampler.lut1_hits}/"
        f"{sampler.lut2_hits}/{sampler.scan_fallbacks}"
    )
    print(
        f"  random bits per sample: "
        f"{bits.bits_consumed / SAMPLES:.2f} "
        "(8-bit index + sign + occasional extensions)"
    )

    # --- Exact goodness of fit -------------------------------------------
    expected = exact_output_distribution(pmat, params.q)
    result = chi_square_goodness_of_fit(count_samples(values), expected)
    print(
        f"\nchi-square against the exact DDG distribution: "
        f"stat = {result.statistic:.1f}, dof = {result.degrees_of_freedom}, "
        f"p = {result.p_value:.3f} "
        f"({'PASS' if result.passed(0.001) else 'FAIL'})"
    )

    # --- Histogram ---------------------------------------------------------
    print("\nsample histogram (|x| <= 12):")
    counts = count_samples(signed)
    peak = max(counts.values())
    for x in range(-12, 13):
        bar = "#" * int(46 * counts.get(x, 0) / peak)
        print(f"  {x:+3d} |{bar}")


if __name__ == "__main__":
    main()
