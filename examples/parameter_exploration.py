#!/usr/bin/env python3
"""Explore the design space beyond the paper's P1/P2.

Sweeps NTT-friendly parameter sets, reporting for each: decryption
failure probability (analytic), modelled encryption cycles, table flash
and working RAM — the trade-offs an embedded deployment weighs.

    python examples/parameter_exploration.py
"""

from repro.analysis.security import estimate_security
from repro.analysis.tables import render_table
from repro.core.failures import estimate
from repro.core.params import P1, P2, custom_parameter_set
from repro.cyclemodel.scheme_cycles import encrypt_cycles, keygen_cycles
from repro.machine.footprint import encryption_footprint
from repro.machine.machine import CortexM4
from repro.trng.bitpool import BitPool
from repro.trng.stream import DeterministicRng
from repro.trng.trng import SimulatedTrng
from repro.trng.xorshift import Xorshift128

#: NTT-friendly candidates: q prime, q = 1 mod 2n.
CANDIDATES = [
    P1,
    P2,
    custom_parameter_set(128, 7681, 11.31, name="half-P1"),
    custom_parameter_set(256, 12289, 11.31, name="P1-bigq"),
    custom_parameter_set(256, 7681, 18.0, name="P1-widenoise"),
]


def modelled_encrypt_cycles(params, seed=3):
    machine = CortexM4()
    pool = BitPool(
        SimulatedTrng(Xorshift128(seed), machine=machine), machine=machine
    )
    pair, _ = keygen_cycles(machine, params, pool)
    message = DeterministicRng(seed).message_bits(params.n)
    machine2 = CortexM4()
    pool2 = BitPool(
        SimulatedTrng(Xorshift128(seed + 1), machine=machine2),
        machine=machine2,
    )
    _, enc = encrypt_cycles(machine2, params, pair.public, message, pool2)
    return enc.cycles


def main():
    rows = []
    for params in CANDIDATES:
        fail = estimate(params)
        cycles = modelled_encrypt_cycles(params)
        fp = encryption_footprint(params)
        security = estimate_security(params)
        rows.append(
            [
                params.name,
                params.n,
                params.q,
                f"{fail.per_message:.1e}",
                cycles,
                fp.ram_bytes,
                fp.table_flash_bytes,
                f"2^{security.bit_security:.0f}",
            ]
        )
    print(
        render_table(
            [
                "set",
                "n",
                "q",
                "P[msg fail]",
                "enc cycles",
                "RAM (B)",
                "tables (B)",
                "LP11 security",
            ],
            rows,
            title="Parameter-space exploration (Cortex-M4F model)",
        )
    )
    print(
        "\nreading the table:\n"
        "  * halving n halves RAM and nearly halves cycles but wrecks\n"
        "    security margins (not modelled here) and failure rates;\n"
        "  * raising q at fixed n suppresses decryption failures\n"
        "    (bigger q/4 window) at slightly wider coefficients;\n"
        "  * P1-widenoise shows the other side: widening the error\n"
        "    distribution (more security per sample) explodes the\n"
        "    failure rate, which is why the paper's sigma is so small."
    )


if __name__ == "__main__":
    main()
