#!/usr/bin/env python3
"""Multi-tenant keystore walkthrough: named keys, rotation, isolation.

One server (or in-process engine) serves many tenants, each under its
own named keypair with an independent lifecycle:

1. create keys for three tenants and take pinned handles;
2. serve per-tenant traffic — ciphertexts and KEM blobs never cross
   tenants (the key-confirmation tag rejects them);
3. rotate one tenant's key mid-stream and watch the stale pinned
   handle fail with a *typed* error until it refreshes;
4. retire a tenant and list what is left.

Decryption failures — a real ~1% property of these 2015-era
parameters, independent of the keystore — surface as
:class:`repro.DecryptionError` and are retried, exactly like
``kem_handshake.py``.

The engine string is the only knob: run the same lifecycle on a worker
pool or a live server.

    python examples/multi_tenant.py                       # local engine
    python examples/multi_tenant.py --engine pool:2       # worker pool
    python examples/multi_tenant.py --engine tcp://host:8470
"""

import argparse
import sys

from repro import P1, RlweSession
from repro.api import (
    DecryptionError,
    KeyNotFoundError,
    StaleKeyGenerationError,
)

TENANTS = ("acme", "globex", "initech")


def transport_secret(handle, attempts=5):
    """One KEM handshake under ``handle``, retrying decryption failures."""
    for attempt in range(1, attempts + 1):
        session_key, encapsulation = handle.encapsulate()
        try:
            assert handle.decapsulate(encapsulation) == session_key
            return session_key, encapsulation
        except DecryptionError:
            print(
                f"attempt {attempt}: decryption failure detected "
                f"(expected at ~1% per ciphertext); retrying"
            )
    raise SystemExit("error: persistent decryption failures")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--engine",
        default="local",
        help="local (default), pool[:N], or tcp://host:port",
    )
    parser.add_argument("--seed", type=int, default=2015)
    args = parser.parse_args()

    with RlweSession.open(
        args.engine, params=P1, seed=args.seed
    ) as session:
        print(f"--- one {session.engine} engine, many tenants\n")

        # 1. Each tenant gets a named key; handles pin a generation.
        handles = {}
        for tenant in TENANTS:
            info = session.create_key(tenant)
            handles[tenant] = session.key(tenant)
            print(
                f"created key {tenant!r} "
                f"(generation {info.generation}, {info.params})"
            )

        # 2. Per-tenant traffic: same session, different keys.
        print()
        for tenant, handle in handles.items():
            message = f"{tenant}: quarterly numbers".encode()
            for _ in range(5):  # ~1% natural decryption failures
                ciphertext = handle.encrypt(message)
                recovered = handle.decrypt(
                    ciphertext, length=len(message)
                )
                if recovered == message:
                    break
            assert recovered == message
            print(
                f"{tenant:<8} encrypt/decrypt roundtrip OK "
                f"({len(ciphertext)}-byte wire ciphertext)"
            )

        # Tenant isolation: a KEM blob for acme is garbage to globex.
        session_key, encapsulation = transport_secret(handles["acme"])
        try:
            handles["globex"].decapsulate(encapsulation)
        except DecryptionError:
            print(
                "\nglobex cannot decapsulate acme's blob "
                "(key confirmation rejects it) — tenants are isolated"
            )

        # 3. Rotation: the old pinned handle fails *typed*, then
        #    refreshes onto the new generation.
        stale_handle = handles["acme"]
        info = session.rotate_key("acme")
        print(
            f"\nrotated {info.name!r} to generation {info.generation}"
        )
        try:
            stale_handle.encrypt(b"after rotation")
        except StaleKeyGenerationError as exc:
            print(f"stale handle rejected: {exc}")
        stale_handle.refresh()
        for _ in range(5):
            ciphertext = stale_handle.encrypt(b"fresh generation")
            recovered = stale_handle.decrypt(ciphertext, length=16)
            if recovered == b"fresh generation":
                break
        assert recovered == b"fresh generation"
        print(
            f"refreshed handle serves generation "
            f"{stale_handle.generation} OK"
        )

        # 4. Retirement ends a tenant's service.
        session.retire_key("initech")
        try:
            handles["initech"].encrypt(b"too late")
        except KeyNotFoundError:
            print("\nretired key 'initech' no longer serves")

        print("\nfinal keystore state:")
        for info in session.list_keys():
            name = info.name if info.name else "(default)"
            print(
                f"  {name:<10} generation {info.generation}  "
                f"{info.state}"
            )
    print("\nmulti-tenant lifecycle OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
