#!/usr/bin/env python3
"""Regenerate every table and figure of the paper from the cycle model.

Equivalent to ``rlwe-repro tables``; takes ~1 minute because the cycle
models execute every kernel at instruction granularity.

    python examples/paper_tables.py [seed]
"""

import sys

from repro.analysis.experiments import all_experiments


def main():
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2015
    print(all_experiments(seed))


if __name__ == "__main__":
    main()
