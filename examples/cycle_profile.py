#!/usr/bin/env python3
"""Per-phase cycle breakdown of the scheme on the Cortex-M4F model.

Reproduces the paper's Table II measurements and shows where the cycles
go inside each operation (sampling / NTT / pointwise / coding) — the
breakdown the paper's optimizations target.

    python examples/cycle_profile.py [P1|P2]
"""

import sys

from repro.analysis.tables import render_table
from repro.core.params import get_parameter_set
from repro.cyclemodel.scheme_cycles import (
    decrypt_cycles,
    encrypt_cycles,
    keygen_cycles,
)
from repro.machine.footprint import operation_footprints
from repro.machine.machine import CortexM4
from repro.trng.bitpool import BitPool
from repro.trng.stream import DeterministicRng
from repro.trng.trng import SimulatedTrng
from repro.trng.xorshift import Xorshift128

PAPER = {
    ("P1", "Key Generation"): 116_772,
    ("P1", "Encryption"): 121_166,
    ("P1", "Decryption"): 43_324,
    ("P2", "Key Generation"): 263_622,
    ("P2", "Encryption"): 261_939,
    ("P2", "Decryption"): 96_520,
}


def pooled_machine(seed):
    machine = CortexM4()
    pool = BitPool(
        SimulatedTrng(Xorshift128(seed), machine=machine), machine=machine
    )
    return machine, pool


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "P1"
    params = get_parameter_set(name)
    print(f"cycle profile on the Cortex-M4F model: {params.describe()}\n")

    machine, pool = pooled_machine(1)
    pair, keygen = keygen_cycles(machine, params, pool)

    message = DeterministicRng(42).message_bits(params.n)
    machine, pool = pooled_machine(2)
    ct, encrypt = encrypt_cycles(machine, params, pair.public, message, pool)

    machine = CortexM4()
    decoded, decrypt = decrypt_cycles(machine, params, pair.private, ct)
    assert decoded == message, "cycle-model roundtrip failed"

    rows = []
    for op in (keygen, encrypt, decrypt):
        paper = PAPER[(params.name, op.operation)]
        rows.append([op.operation, op.cycles, paper, op.cycles / paper])
    print(
        render_table(
            ["operation", "modelled cycles", "paper cycles", "ratio"],
            rows,
            title="Table II reproduction",
        )
    )

    print("\nper-phase breakdown:")
    for op in (keygen, encrypt, decrypt):
        total = op.cycles
        print(f"  {op.operation}:")
        for region, cycles in sorted(
            op.regions.items(), key=lambda kv: -kv[1]
        ):
            print(
                f"    {region:<10s} {cycles:>9,} cycles "
                f"({cycles / total:5.1%})"
            )

    print("\nmemory footprint model:")
    for fp in operation_footprints(params):
        print(f"  {fp}")


if __name__ == "__main__":
    main()
