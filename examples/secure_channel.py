#!/usr/bin/env python3
"""Two-party message exchange over a byte-level wire format.

Alice publishes a serialized public key; Bob encrypts a session secret
under it; Alice recovers it.  Demonstrates the serialization module and
the multi-block chunking a real application needs for messages larger
than one ciphertext (n bits).

    python examples/secure_channel.py
"""

from repro import P1, seeded_scheme
from repro.core import serialize


def chunk(data: bytes, size: int):
    for offset in range(0, len(data), size):
        yield data[offset : offset + size]


def main():
    params = P1
    print(f"channel parameters: {params.describe()}")
    print(f"payload capacity per ciphertext: {params.message_bytes} bytes")

    # --- Alice's side -------------------------------------------------
    alice = seeded_scheme(params, seed=100, ntt="packed")
    alice_keys = alice.generate_keypair()
    published_key = serialize.serialize_public_key(alice_keys.public)
    print(f"\nAlice publishes a {len(published_key)}-byte public key")

    # --- Bob's side ---------------------------------------------------
    bob = seeded_scheme(params, seed=200, ntt="packed")
    bob_view = serialize.deserialize_public_key(published_key)
    plaintext = (
        b"Lattice-based encryption survives quantum adversaries; "
        b"this 96-byte note needs three ciphertext blocks."
    )
    wire_blocks = []
    for block in chunk(plaintext, params.message_bytes):
        ct = bob.encrypt(bob_view, block)
        wire_blocks.append(serialize.serialize_ciphertext(ct))
    total = sum(len(b) for b in wire_blocks)
    print(
        f"Bob sends {len(wire_blocks)} ciphertext blocks "
        f"({total} bytes for {len(plaintext)} plaintext bytes, "
        f"expansion {total / len(plaintext):.1f}x)"
    )

    # --- Alice decrypts -----------------------------------------------
    received = b""
    remaining = len(plaintext)
    for blob in wire_blocks:
        ct = serialize.deserialize_ciphertext(blob)
        length = min(params.message_bytes, remaining)
        received += alice.decrypt(alice_keys.private, ct, length=length)
        remaining -= length
    print(f"\nAlice recovers: {received.decode()!r}")
    assert received == plaintext
    print("secure channel OK")


if __name__ == "__main__":
    main()
