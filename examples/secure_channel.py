#!/usr/bin/env python3
"""Two-party message exchange over a real wire, via the session facade.

Alice runs an actual ``rlwe-repro`` key-transport server (in a
background thread here; normally a separate process); Bob opens a
:class:`repro.RlweSession` on the ``tcp://`` engine and never touches
sockets, frames, or serialization — the same ``encrypt_many`` /
``decrypt_many`` calls would run in-process on the ``local`` engine.
Demonstrates the multi-block chunking a real application needs for
messages larger than one ciphertext, batched through one call.

    python examples/secure_channel.py            # session facade + TCP
    python examples/secure_channel.py --legacy   # pre-facade serialize API
"""

import asyncio
import queue
import sys
import threading

from repro import P1, RlweSession, seeded_scheme
from repro.core import serialize


def chunk(data: bytes, size: int):
    for offset in range(0, len(data), size):
        yield data[offset : offset + size]


PLAINTEXT = (
    b"Lattice-based encryption survives quantum adversaries; "
    b"this 96-byte note needs three ciphertext blocks."
)


def alice_server(params, seed, handoff: "queue.Queue"):
    """Alice's side: a real asyncio key-transport server."""
    from repro.service.executor import serving_seed
    from repro.service.server import start_server

    async def serve():
        keypair = seeded_scheme(params, seed=seed).generate_keypair()
        scheme = seeded_scheme(params, seed=serving_seed(seed))
        server = await start_server(scheme, port=0, keypair=keypair)
        stop = asyncio.Event()
        handoff.put((server.port, asyncio.get_running_loop(), stop))
        try:
            await stop.wait()
        finally:
            await server.close()

    asyncio.run(serve())


def main_session():
    params = P1
    print(f"channel parameters: {params.describe()}")
    print(f"payload capacity per ciphertext: {params.message_bytes} bytes")

    # --- Alice publishes a server ------------------------------------
    handoff: "queue.Queue" = queue.Queue()
    thread = threading.Thread(
        target=alice_server, args=(params, 100, handoff), daemon=True
    )
    thread.start()
    port, loop, stop = handoff.get(timeout=30)
    print(f"\nAlice serves her key on tcp://127.0.0.1:{port}")

    try:
        # --- Bob's side ----------------------------------------------
        with RlweSession.open(f"tcp://127.0.0.1:{port}") as bob:
            print(f"Bob opens a session [engine={bob.engine}, "
                  f"params={bob.params.name}, "
                  f"{len(bob.public_key_bytes)}-byte public key]")
            blocks = list(chunk(PLAINTEXT, params.message_bytes))
            wire_blocks = bob.encrypt_many(blocks)
            total = sum(len(b) for b in wire_blocks)
            print(
                f"Bob sends {len(wire_blocks)} ciphertext blocks "
                f"({total} bytes for {len(PLAINTEXT)} plaintext bytes, "
                f"expansion {total / len(PLAINTEXT):.1f}x)"
            )

            # --- Alice decrypts (same facade, same engine) -----------
            received = b""
            remaining = len(PLAINTEXT)
            for blob in wire_blocks:
                length = min(params.message_bytes, remaining)
                received += bob.decrypt(blob, length=length)
                remaining -= length
            print(f"\nAlice recovers: {received.decode()!r}")
            assert received == PLAINTEXT
            print("secure channel OK")
    finally:
        loop.call_soon_threadsafe(stop.set)
        thread.join(timeout=30)


def main_legacy():
    """The pre-facade path: explicit serialize calls, no transport."""
    params = P1
    print(f"channel parameters: {params.describe()}")
    print(f"payload capacity per ciphertext: {params.message_bytes} bytes")

    alice = seeded_scheme(params, seed=100, ntt="packed")
    alice_keys = alice.generate_keypair()
    published_key = serialize.serialize_public_key(alice_keys.public)
    print(f"\nAlice publishes a {len(published_key)}-byte public key")

    bob = seeded_scheme(params, seed=200, ntt="packed")
    bob_view = serialize.deserialize_public_key(published_key)
    wire_blocks = []
    for block in chunk(PLAINTEXT, params.message_bytes):
        ct = bob.encrypt(bob_view, block)
        wire_blocks.append(serialize.serialize_ciphertext(ct))
    total = sum(len(b) for b in wire_blocks)
    print(
        f"Bob sends {len(wire_blocks)} ciphertext blocks "
        f"({total} bytes for {len(PLAINTEXT)} plaintext bytes, "
        f"expansion {total / len(PLAINTEXT):.1f}x)"
    )

    received = b""
    remaining = len(PLAINTEXT)
    for blob in wire_blocks:
        ct = serialize.deserialize_ciphertext(blob)
        length = min(params.message_bytes, remaining)
        received += alice.decrypt(alice_keys.private, ct, length=length)
        remaining -= length
    print(f"\nAlice recovers: {received.decode()!r}")
    assert received == PLAINTEXT
    print("secure channel OK")


def main(argv=None):
    args = sys.argv[1:] if argv is None else argv
    if "--legacy" in args:
        main_legacy()
    else:
        main_session()


if __name__ == "__main__":
    main()
