#!/usr/bin/env python3
"""Quickstart: key generation, encryption, decryption.

Runs the paper's ring-LWE encryption scheme at both parameter sets
through the unified :class:`repro.RlweSession` facade and prints what
happened at each step.  The same code runs unchanged on a worker pool
(``engine="pool:4"``) or against a remote server
(``engine="tcp://host:8470"``).

    python examples/quickstart.py            # session facade (default)
    python examples/quickstart.py --legacy   # pre-facade direct API
"""

import sys

from repro import P1, P2, RlweSession, seeded_scheme


def demo(params, seed, engine="local"):
    print(f"--- {params.describe()}")
    with RlweSession.open(engine, params=params, seed=seed) as session:
        # 1. Key generation happens at open: the private key stays
        #    inside the engine; the public key is the session's handle.
        public = session.keygen()
        print(f"generated keys: n = {params.n} coefficients, "
              f"q = {params.q} ({params.coefficient_bits}-bit) "
              f"[engine={session.engine}]")

        # 2. Encrypt one message block.  The facade's currency is the
        #    self-describing wire format, ready for any transport.
        message = b"quantum-safe greetings!"[: params.message_bytes]
        ciphertext = session.encrypt(message)
        print(f"encrypted {len(message)} bytes into a "
              f"{len(ciphertext)}-byte wire ciphertext "
              f"(2 x {params.n} NTT-domain coefficients)")

        # 3. Decrypt and threshold-decode.
        recovered = session.decrypt(ciphertext, length=len(message))
        print(f"decrypted: {recovered!r}")
        assert recovered == message, "roundtrip failed"
        assert public.params == params
        print("roundtrip OK\n")


def legacy_demo(params, seed):
    """The pre-facade path: direct scheme objects (still supported)."""
    print(f"--- {params.describe()}")
    scheme = seeded_scheme(params, seed=seed, ntt="packed")
    keys = scheme.generate_keypair()
    print(f"generated keys: n = {params.n} coefficients, "
          f"q = {params.q} ({params.coefficient_bits}-bit)")
    message = b"quantum-safe greetings!"[: params.message_bytes]
    ciphertext = scheme.encrypt(keys.public, message)
    print(f"encrypted {len(message)} bytes into 2 x {params.n} "
          f"NTT-domain coefficients")
    recovered = scheme.decrypt(keys.private, ciphertext, length=len(message))
    print(f"decrypted: {recovered!r}")
    assert recovered == message, "roundtrip failed"
    print("roundtrip OK\n")


def main(argv=None):
    args = sys.argv[1:] if argv is None else argv
    runner = legacy_demo if "--legacy" in args else demo
    for seed, params in enumerate((P1, P2), start=1):
        runner(params, seed)


if __name__ == "__main__":
    main()
