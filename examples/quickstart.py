#!/usr/bin/env python3
"""Quickstart: key generation, encryption, decryption.

Runs the paper's ring-LWE encryption scheme at both parameter sets and
prints what happened at each step.

    python examples/quickstart.py
"""

from repro import P1, P2, seeded_scheme


def demo(params, seed):
    print(f"--- {params.describe()}")
    scheme = seeded_scheme(params, seed=seed, ntt="packed")

    # 1. Key generation: the private key r2_hat and public pair
    #    (a_hat, p_hat) all live in the NTT domain.
    keys = scheme.generate_keypair()
    print(f"generated keys: n = {params.n} coefficients, "
          f"q = {params.q} ({params.coefficient_bits}-bit)")

    # 2. Encrypt one message block (one bit per coefficient).
    message = b"quantum-safe greetings!"[: params.message_bytes]
    ciphertext = scheme.encrypt(keys.public, message)
    print(f"encrypted {len(message)} bytes into 2 x {params.n} "
          f"NTT-domain coefficients")

    # 3. Decrypt and threshold-decode.
    recovered = scheme.decrypt(keys.private, ciphertext, length=len(message))
    print(f"decrypted: {recovered!r}")
    assert recovered == message, "roundtrip failed"
    print("roundtrip OK\n")


def main():
    for seed, params in enumerate((P1, P2), start=1):
        demo(params, seed)


if __name__ == "__main__":
    main()
