#!/usr/bin/env python3
"""Key-encapsulation handshake: transporting a session key.

The practical use of ring-LWE encryption (and the basis of the paper's
ECIES comparison in Table IV): the responder publishes a key, the
initiator encapsulates a fresh 256-bit secret under it, and both sides
derive the same SHA-256 session key.  Decryption failures — a real
property of these 2015-era parameters — surface as explicit
confirmation-tag mismatches and are retried.

    python examples/kem_handshake.py
"""

from repro import P1, seeded_scheme
from repro.core.failures import estimate
from repro.core.kem import EncapsulationError, RlweKem


def main():
    params = P1
    print(f"handshake parameters: {params.describe()}")
    print(f"analytic failure estimate: {estimate(params)}\n")

    responder = seeded_scheme(params, seed=31, ntt="packed")
    responder_keys = responder.generate_keypair()

    initiator = seeded_scheme(params, seed=32, ntt="packed")
    kem = RlweKem(initiator)

    attempts = 0
    while True:
        attempts += 1
        encapsulation, initiator_secret = kem.encapsulate(
            responder_keys.public
        )
        try:
            responder_secret = RlweKem(responder).decapsulate(
                responder_keys.private,
                responder_keys.public,
                encapsulation,
            )
        except EncapsulationError:
            print(f"attempt {attempts}: decryption failure detected "
                  f"by the confirmation tag; re-encapsulating")
            continue
        break

    assert initiator_secret.key == responder_secret.key
    print(f"handshake complete in {attempts} attempt(s)")
    print(f"  shared session key: {initiator_secret.key.hex()}")
    print(f"  ciphertext coefficients: 2 x {params.n}")
    print(f"  confirmation tag: {encapsulation.tag.hex()}")

    # The session key now drives any symmetric cipher; demonstrate a
    # toy XOR keystream so the example is end-to-end.
    message = b"session established"
    keystream = (initiator_secret.key * 2)[: len(message)]
    sealed = bytes(m ^ k for m, k in zip(message, keystream))
    opened = bytes(c ^ k for c, k in zip(sealed, keystream))
    assert opened == message
    print(f"\nsymmetric payload roundtrip under the session key: OK")


if __name__ == "__main__":
    main()
