#!/usr/bin/env python3
"""Key-encapsulation handshake: transporting a session key.

The practical use of ring-LWE encryption (and the basis of the paper's
ECIES comparison in Table IV): a key-owning session encapsulates a
fresh 256-bit secret under its public key and recovers it on the other
side.  Decryption failures — a real property of these 2015-era
parameters — surface as the facade's typed
:class:`repro.DecryptionError` and are retried, on every engine the
session can run on.

    python examples/kem_handshake.py            # session facade
    python examples/kem_handshake.py --legacy   # pre-facade KEM objects
"""

import sys

from repro import P1, DecryptionError, RlweSession, seeded_scheme
from repro.core.failures import estimate


def main_session():
    params = P1
    print(f"handshake parameters: {params.describe()}")
    print(f"analytic failure estimate: {estimate(params)}\n")

    # One key-owning session plays the responder; the encapsulation
    # bytes it hands out are what an initiator would send over the
    # wire.  Swap "local" for "tcp://host:8470" and the same handshake
    # terminates against a remote key-transport server.
    with RlweSession.open("local", params=params, seed=31) as session:
        attempts = 0
        while True:
            attempts += 1
            initiator_key, encapsulation = session.encapsulate()
            try:
                responder_key = session.decapsulate(encapsulation)
            except DecryptionError:
                print(f"attempt {attempts}: decryption failure detected "
                      f"by the confirmation tag; re-encapsulating")
                continue
            break

        assert initiator_key == responder_key
        print(f"handshake complete in {attempts} attempt(s) "
              f"[engine={session.engine}]")
        print(f"  shared session key: {initiator_key.hex()}")
        print(f"  wire encapsulation: {len(encapsulation)} bytes "
              f"(ciphertext + 16-byte confirmation tag)")

    # The session key now drives any symmetric cipher; demonstrate a
    # toy XOR keystream so the example is end-to-end.
    message = b"session established"
    keystream = (initiator_key * 2)[: len(message)]
    sealed = bytes(m ^ k for m, k in zip(message, keystream))
    opened = bytes(c ^ k for c, k in zip(sealed, keystream))
    assert opened == message
    print(f"\nsymmetric payload roundtrip under the session key: OK")


def main_legacy():
    """The pre-facade path: two parties with explicit KEM objects."""
    from repro.core.kem import EncapsulationError, RlweKem

    params = P1
    print(f"handshake parameters: {params.describe()}")
    print(f"analytic failure estimate: {estimate(params)}\n")

    responder = seeded_scheme(params, seed=31, ntt="packed")
    responder_keys = responder.generate_keypair()

    initiator = seeded_scheme(params, seed=32, ntt="packed")
    kem = RlweKem(initiator)

    attempts = 0
    while True:
        attempts += 1
        encapsulation, initiator_secret = kem.encapsulate(
            responder_keys.public
        )
        try:
            responder_secret = RlweKem(responder).decapsulate(
                responder_keys.private,
                responder_keys.public,
                encapsulation,
            )
        except EncapsulationError:
            print(f"attempt {attempts}: decryption failure detected "
                  f"by the confirmation tag; re-encapsulating")
            continue
        break

    assert initiator_secret.key == responder_secret.key
    print(f"handshake complete in {attempts} attempt(s)")
    print(f"  shared session key: {initiator_secret.key.hex()}")
    print(f"  confirmation tag: {encapsulation.tag.hex()}")

    message = b"session established"
    keystream = (initiator_secret.key * 2)[: len(message)]
    sealed = bytes(m ^ k for m, k in zip(message, keystream))
    opened = bytes(c ^ k for c, k in zip(sealed, keystream))
    assert opened == message
    print(f"\nsymmetric payload roundtrip under the session key: OK")


def main(argv=None):
    args = sys.argv[1:] if argv is None else argv
    if "--legacy" in args:
        main_legacy()
    else:
        main_session()


if __name__ == "__main__":
    main()
