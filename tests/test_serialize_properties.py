"""Serialization property tests: the wire-format trust boundary.

Three families:

* round-trips for all five wire kinds (public key, private key,
  keypair helper, ciphertext, encapsulation) across P1–P4;
* truncation/garbage fuzz — every strict prefix of a valid buffer and
  every trailing-surplus extension must fail with ValueError, never any
  other exception type (the service maps ValueError to bad_request
  responses; anything else would crash a connection handler);
* cross-path equivalence of the vectorized (NumPy) and scalar
  bit-packing implementations.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kem import TAG_BYTES, Encapsulation
from repro.core.params import P1, P2, P3, P4
from repro.core.scheme import Ciphertext, KeyPair, PrivateKey, PublicKey
from repro.core.serialize import (
    _pack_coefficients_scalar,
    _unpack_coefficients_scalar,
    deserialize_ciphertext,
    deserialize_encapsulation,
    deserialize_private_key,
    deserialize_public_key,
    pack_coefficients,
    polynomial_wire_bytes,
    serialize_ciphertext,
    serialize_encapsulation,
    serialize_keypair,
    serialize_private_key,
    serialize_public_key,
    unpack_coefficients,
)

ALL_PARAMS = [P1, P2, P3, P4]
PARAM_IDS = [p.name for p in ALL_PARAMS]


def _random_poly(params, rng):
    return tuple(rng.randrange(params.q) for _ in range(params.n))


@pytest.fixture(params=ALL_PARAMS, ids=PARAM_IDS)
def wire_objects(request):
    """One synthetic instance of every wire object for one param set."""
    params = request.param
    rng = random.Random(hash(params.name) & 0xFFFF)
    public = PublicKey(params, _random_poly(params, rng), _random_poly(params, rng))
    private = PrivateKey(params, _random_poly(params, rng))
    ciphertext = Ciphertext(
        params, _random_poly(params, rng), _random_poly(params, rng)
    )
    encapsulation = Encapsulation(ciphertext, bytes(range(TAG_BYTES)))
    return params, public, private, ciphertext, encapsulation


class TestRoundTripsAllParams:
    def test_public_key(self, wire_objects):
        _, public, _, _, _ = wire_objects
        restored = deserialize_public_key(serialize_public_key(public))
        assert restored == public

    def test_private_key(self, wire_objects):
        _, _, private, _, _ = wire_objects
        restored = deserialize_private_key(serialize_private_key(private))
        assert restored == private

    def test_keypair_helper(self, wire_objects):
        _, public, private, _, _ = wire_objects
        pub_bytes, prv_bytes = serialize_keypair(KeyPair(public, private))
        assert deserialize_public_key(pub_bytes) == public
        assert deserialize_private_key(prv_bytes) == private

    def test_ciphertext(self, wire_objects):
        _, _, _, ciphertext, _ = wire_objects
        restored = deserialize_ciphertext(serialize_ciphertext(ciphertext))
        assert restored == ciphertext

    def test_encapsulation(self, wire_objects):
        _, _, _, _, encapsulation = wire_objects
        restored = deserialize_encapsulation(
            serialize_encapsulation(encapsulation)
        )
        assert restored.ciphertext == encapsulation.ciphertext
        assert restored.tag == encapsulation.tag

    def test_wire_sizes(self, wire_objects):
        params, public, _, ciphertext, encapsulation = wire_objects
        header = 7 + len(params.name)
        size = polynomial_wire_bytes(params)
        assert len(serialize_public_key(public)) == header + 2 * size
        assert len(serialize_ciphertext(ciphertext)) == header + 2 * size
        assert (
            len(serialize_encapsulation(encapsulation))
            == header + 2 * size + TAG_BYTES
        )


class TestTruncationFuzz:
    """Every byte-offset prefix and every surplus must be a ValueError."""

    def _assert_all_offsets_rejected(self, data, deserializer):
        for cut in range(len(data)):
            with pytest.raises(ValueError):
                deserializer(data[:cut])
        for surplus in (b"\x00", b"J", b"JUNK"):
            with pytest.raises(ValueError):
                deserializer(data + surplus)

    def test_public_key(self, wire_objects):
        _, public, _, _, _ = wire_objects
        self._assert_all_offsets_rejected(
            serialize_public_key(public), deserialize_public_key
        )

    def test_private_key(self, wire_objects):
        _, _, private, _, _ = wire_objects
        self._assert_all_offsets_rejected(
            serialize_private_key(private), deserialize_private_key
        )

    def test_ciphertext(self, wire_objects):
        _, _, _, ciphertext, _ = wire_objects
        self._assert_all_offsets_rejected(
            serialize_ciphertext(ciphertext), deserialize_ciphertext
        )

    def test_encapsulation(self, wire_objects):
        _, _, _, _, encapsulation = wire_objects
        self._assert_all_offsets_rejected(
            serialize_encapsulation(encapsulation), deserialize_encapsulation
        )

    @given(garbage=st.binary(min_size=0, max_size=64))
    @settings(max_examples=200)
    def test_arbitrary_bytes_never_escape_value_error(self, garbage):
        for deserializer in (
            deserialize_public_key,
            deserialize_private_key,
            deserialize_ciphertext,
            deserialize_encapsulation,
        ):
            try:
                deserializer(garbage)
            except ValueError:
                pass  # the only acceptable failure type

    @given(garbage=st.binary(min_size=0, max_size=64))
    @settings(max_examples=200)
    def test_header_prefixed_garbage_never_escapes_value_error(self, garbage):
        for kind in (1, 2, 3, 4):
            data = b"RLWE" + bytes([1, kind]) + garbage
            for deserializer in (
                deserialize_public_key,
                deserialize_private_key,
                deserialize_ciphertext,
                deserialize_encapsulation,
            ):
                try:
                    deserializer(data)
                except ValueError:
                    pass


class TestPackingCrossPath:
    """The NumPy and scalar bit-packing paths are bit-identical."""

    @given(
        coeffs=st.lists(
            st.integers(min_value=0, max_value=12288), min_size=0, max_size=80
        )
    )
    @settings(max_examples=150)
    def test_pack_matches_scalar(self, coeffs):
        q = 12289
        width = (q - 1).bit_length()
        assert pack_coefficients(coeffs, q) == _pack_coefficients_scalar(
            coeffs, q, width
        )

    @given(
        coeffs=st.lists(
            st.integers(min_value=0, max_value=7680), min_size=1, max_size=80
        )
    )
    @settings(max_examples=150)
    def test_unpack_matches_scalar(self, coeffs):
        q = 7681
        width = (q - 1).bit_length()
        packed = _pack_coefficients_scalar(coeffs, q, width)
        assert unpack_coefficients(packed, len(coeffs), q) == coeffs
        assert (
            _unpack_coefficients_scalar(packed, len(coeffs), q, width)
            == coeffs
        )

    @pytest.mark.parametrize("params", ALL_PARAMS, ids=PARAM_IDS)
    def test_full_polynomial_both_paths(self, params, monkeypatch):
        from repro.numpy_support import FORCE_NO_NUMPY_ENV

        rng = random.Random(99)
        poly = _random_poly(params, rng)
        vectorized = pack_coefficients(poly, params.q)
        monkeypatch.setenv(FORCE_NO_NUMPY_ENV, "1")
        scalar = pack_coefficients(poly, params.q)
        assert vectorized == scalar
        assert (
            unpack_coefficients(scalar, params.n, params.q) == list(poly)
        )

    def test_out_of_range_rejected_both_paths(self, monkeypatch):
        from repro.numpy_support import FORCE_NO_NUMPY_ENV

        for force_off in (False, True):
            if force_off:
                monkeypatch.setenv(FORCE_NO_NUMPY_ENV, "1")
            with pytest.raises(ValueError):
                pack_coefficients([7681], 7681)
            with pytest.raises(ValueError):
                pack_coefficients([-1], 7681)
            with pytest.raises(ValueError):
                unpack_coefficients(b"\xff\xff", 1, 7681)
