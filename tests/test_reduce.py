"""Barrett reduction: bit-exactness and cost accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.machine import CortexM4, NullMachine
from repro.machine.reduce import BarrettReducer

MODULI = [7681, 12289, 97, 257]


class TestCorrectness:
    @pytest.mark.parametrize("q", MODULI)
    def test_boundary_values(self, q):
        reducer = BarrettReducer(q)
        m = NullMachine()
        for value in (0, 1, q - 1, q, q + 1, 2 * q - 1, (q - 1) ** 2,
                      (1 << 32) - 1):
            assert reducer.reduce(m, value) == value % q

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=300)
    def test_random_values_7681(self, value):
        assert BarrettReducer(7681).reduce(NullMachine(), value) == value % 7681

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    @settings(max_examples=300)
    def test_random_values_12289(self, value):
        assert (
            BarrettReducer(12289).reduce(NullMachine(), value) == value % 12289
        )

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            BarrettReducer(7681).reduce(NullMachine(), 1 << 32)


class TestModularOps:
    @pytest.mark.parametrize("q", [7681, 12289])
    @given(data=st.data())
    @settings(max_examples=100)
    def test_mul_add_sub(self, q, data):
        a = data.draw(st.integers(min_value=0, max_value=q - 1))
        b = data.draw(st.integers(min_value=0, max_value=q - 1))
        reducer = BarrettReducer(q)
        m = NullMachine()
        assert reducer.mul_mod(m, a, b) == a * b % q
        assert reducer.add_mod(m, a, b) == (a + b) % q
        assert reducer.sub_mod(m, a, b) == (a - b) % q


class TestCosts:
    def test_reduce_cost_bounded(self):
        reducer = BarrettReducer(7681)
        m = CortexM4()
        reducer.reduce(m, (7680) ** 2)
        # umull + mls + cmp + (maybe) csub: 3..4 modelled cycles.
        assert 3 <= m.cycles <= 4

    def test_mul_mod_cost(self):
        reducer = BarrettReducer(7681)
        m = CortexM4()
        reducer.mul_mod(m, 5000, 6000)
        assert 4 <= m.cycles <= 5

    def test_add_mod_cost(self):
        reducer = BarrettReducer(7681)
        m = CortexM4()
        reducer.add_mod(m, 7000, 7000)  # wraps: conditional executes
        wrap = m.cycles
        m2 = CortexM4()
        reducer.add_mod(m2, 1, 1)
        assert wrap == m2.cycles + 1

    def test_constant_matches_modmath(self):
        from repro.modmath import barrett_constant

        assert BarrettReducer(12289).constant == barrett_constant(12289)
