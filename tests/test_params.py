"""Tests for the parameter sets."""

import math

import pytest

from repro.core.params import (
    P1,
    P2,
    P3,
    P4,
    PARAMETER_SETS,
    ParameterSet,
    custom_parameter_set,
    get_parameter_set,
)


class TestPaperParameterSets:
    def test_p1_values(self):
        assert (P1.n, P1.q, P1.s) == (256, 7681, 11.31)
        assert P1.security == "medium-term"

    def test_p2_values(self):
        assert (P2.n, P2.q, P2.s) == (512, 12289, 12.18)

    def test_sigma_derivation(self):
        assert P1.sigma == pytest.approx(11.31 / math.sqrt(2 * math.pi))
        assert P2.sigma == pytest.approx(12.18 / math.sqrt(2 * math.pi))

    def test_ntt_friendliness(self):
        for p in (P1, P2, P3):
            assert (p.q - 1) % (2 * p.n) == 0
        assert not P4.ntt_friendly

    def test_coefficient_bits(self):
        assert P1.coefficient_bits == 13
        assert P2.coefficient_bits == 14
        assert P1.coefficient_bytes == 2

    def test_message_capacity(self):
        assert P1.message_bytes == 32
        assert P2.message_bytes == 64


class TestRoots:
    @pytest.mark.parametrize("params", [P1, P2], ids=["P1", "P2"])
    def test_psi_is_2nth_root(self, params):
        assert pow(params.psi, 2 * params.n, params.q) == 1
        assert pow(params.psi, params.n, params.q) == params.q - 1

    @pytest.mark.parametrize("params", [P1, P2], ids=["P1", "P2"])
    def test_omega_is_nth_root(self, params):
        assert params.omega == params.psi**2 % params.q
        assert pow(params.omega, params.n, params.q) == 1

    @pytest.mark.parametrize("params", [P1, P2], ids=["P1", "P2"])
    def test_inverses(self, params):
        q = params.q
        assert params.psi * params.psi_inverse % q == 1
        assert params.omega * params.omega_inverse % q == 1
        assert params.n * params.n_inverse % q == 1


class TestEncodingConstants:
    def test_half_and_quarter(self):
        assert P1.half_q == 3840
        assert P1.quarter_q == 1920
        assert P2.half_q == 6144


class TestValidation:
    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            ParameterSet("bad", 100, 7681, 11.31)

    def test_composite_modulus_rejected(self):
        with pytest.raises(ValueError):
            ParameterSet("bad", 256, 7680, 11.31)

    def test_wrong_congruence_rejected(self):
        # 12289 = 1 mod 1024 but 257 is too small for n = 512... use a
        # prime where q != 1 mod 2n: q = 7681 with n = 1024 (2048 !| 7680).
        with pytest.raises(ValueError):
            ParameterSet("bad", 1024, 7681, 11.31)

    def test_small_q_rejected(self):
        with pytest.raises(ValueError):
            ParameterSet("bad", 16, 1, 11.31)


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_parameter_set("p1") is P1
        assert get_parameter_set("P2") is P2

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_parameter_set("P9")

    def test_registry_contents(self):
        assert set(PARAMETER_SETS) == {"P1", "P2", "P3", "P4"}

    def test_custom_set(self):
        p = custom_parameter_set(16, 97, 3.0)
        assert p.n == 16 and p.q == 97
        assert p.name == "custom-16-97"

    def test_describe_mentions_values(self):
        text = P1.describe()
        assert "256" in text and "7681" in text
