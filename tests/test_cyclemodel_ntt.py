"""Cycle-model NTT kernels: bit-exactness and cost orderings."""

import random

import pytest

from repro.core.params import P1, P2
from repro.cyclemodel.ntt_cycles import (
    bit_reverse_cycles,
    ntt_forward_alg3,
    ntt_forward_packed,
    ntt_forward_parallel3,
    ntt_inverse_packed,
    pointwise_add_cycles,
    pointwise_multiply_cycles,
    pointwise_subtract_cycles,
)
from repro.cyclemodel.polymul_cycles import ntt_multiply_cycles
from repro.machine.machine import CortexM4
from repro.ntt.bitrev import bit_reverse_copy
from repro.ntt.polymul import (
    pointwise_add,
    pointwise_multiply,
    pointwise_subtract,
    schoolbook_negacyclic,
)
from repro.ntt.reference import ntt_forward, ntt_inverse
from tests.conftest import SMALL


def polys(params, count, seed=0):
    rng = random.Random(seed)
    return [
        [rng.randrange(params.q) for _ in range(params.n)]
        for _ in range(count)
    ]


@pytest.mark.parametrize("params", [SMALL, P1, P2], ids=["n16", "P1", "P2"])
class TestBitExactness:
    def test_alg3_matches_functional(self, params):
        (a,) = polys(params, 1, seed=1)
        result, _ = CortexM4().measure(ntt_forward_alg3, a, params)
        assert result == ntt_forward(a, params)

    def test_packed_matches_functional(self, params):
        (a,) = polys(params, 1, seed=2)
        result, _ = CortexM4().measure(ntt_forward_packed, a, params)
        assert result == ntt_forward(a, params)

    def test_inverse_matches_functional(self, params):
        (a,) = polys(params, 1, seed=3)
        result, _ = CortexM4().measure(ntt_inverse_packed, a, params)
        assert result == ntt_inverse(a, params)

    def test_parallel_matches_functional(self, params):
        a, b, c = polys(params, 3, seed=4)
        (A, B, C), _ = CortexM4().measure(
            ntt_forward_parallel3, a, b, c, params
        )
        assert A == ntt_forward(a, params)
        assert B == ntt_forward(b, params)
        assert C == ntt_forward(c, params)

    def test_multiply_matches_schoolbook(self, params):
        a, b = polys(params, 2, seed=5)
        result, _ = CortexM4().measure(ntt_multiply_cycles, a, b, params)
        assert result == schoolbook_negacyclic(a, b, params)

    def test_pointwise_ops_match(self, params):
        a, b = polys(params, 2, seed=6)
        m = CortexM4()
        assert pointwise_multiply_cycles(m, a, b, params) == (
            pointwise_multiply(a, b, params)
        )
        assert pointwise_add_cycles(m, a, b, params) == pointwise_add(
            a, b, params
        )
        assert pointwise_subtract_cycles(m, a, b, params) == (
            pointwise_subtract(a, b, params)
        )

    def test_bit_reverse_matches(self, params):
        (a,) = polys(params, 1, seed=7)
        m = CortexM4()
        assert bit_reverse_cycles(m, a, params) == bit_reverse_copy(a)
        assert m.cycles > 0


class TestCostOrderings:
    """The paper's optimization claims as cost-model invariants."""

    @pytest.mark.parametrize("params", [P1, P2], ids=["P1", "P2"])
    def test_packed_cheaper_than_alg3(self, params):
        (a,) = polys(params, 1, seed=8)
        _, alg3 = CortexM4().measure(ntt_forward_alg3, a, params)
        _, packed = CortexM4().measure(ntt_forward_packed, a, params)
        assert packed < alg3

    @pytest.mark.parametrize("params", [P1, P2], ids=["P1", "P2"])
    def test_parallel_cheaper_than_three(self, params):
        a, b, c = polys(params, 3, seed=9)
        _, par = CortexM4().measure(ntt_forward_parallel3, a, b, c, params)
        _, one = CortexM4().measure(ntt_forward_alg3, a, params)
        assert par < 3 * one
        # The saving is loop overhead, not butterflies: bounded gain.
        assert par > 2 * one

    def test_cost_scales_superlinearly_with_n(self):
        (a1,) = polys(P1, 1, seed=10)
        (a2,) = polys(P2, 1, seed=10)
        _, c1 = CortexM4().measure(ntt_forward_packed, a1, P1)
        _, c2 = CortexM4().measure(ntt_forward_packed, a2, P2)
        # n log n scaling: ratio above 2, below 2.5 for 256 -> 512.
        assert 2.0 < c2 / c1 < 2.5

    def test_paper_shape_table1(self):
        """Cycle-model results land within 35% of the paper's Table I
        (absolute constants differ; see EXPERIMENTS.md)."""
        (a,) = polys(P1, 1, seed=11)
        _, fwd = CortexM4().measure(ntt_forward_packed, a, P1)
        assert 0.65 * 31583 < fwd < 1.35 * 31583
        _, inv = CortexM4().measure(ntt_inverse_packed, a, P1)
        assert 0.65 * 39126 < inv < 1.35 * 39126

    def test_cost_is_data_independent(self):
        """Constant-time-style invariant of the NTT kernels: cycle count
        does not depend on the polynomial values."""
        a, b = polys(P1, 2, seed=12)
        _, ca = CortexM4().measure(ntt_forward_packed, a, P1)
        _, cb = CortexM4().measure(ntt_forward_packed, b, P1)
        # Barrett's conditional subtract is data-dependent by 1 cycle
        # per reduction; allow a tiny relative wobble.
        assert abs(ca - cb) / ca < 0.02

    def test_multiply_regions_recorded(self):
        a, b = polys(P1, 2, seed=13)
        m = CortexM4()
        ntt_multiply_cycles(m, a, b, P1)
        assert set(m.regions) == {"ntt_forward", "pointwise", "ntt_inverse"}
        assert m.regions["ntt_forward"] > m.regions["pointwise"]
