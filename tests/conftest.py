"""Shared fixtures for the test-suite.

``small_params`` (n=16, q=97) keeps quadratic oracles and exhaustive
enumerations fast; the paper's P1/P2 sets are exercised by the targeted
tests that need them.
"""

from __future__ import annotations

import random

import pytest

from repro.core.params import P1, P2, custom_parameter_set

SMALL = custom_parameter_set(16, 97, 11.31, name="small-16-97")
MEDIUM = custom_parameter_set(64, 257, 11.31, name="medium-64-257")


@pytest.fixture
def small_params():
    return SMALL


@pytest.fixture
def medium_params():
    return MEDIUM


@pytest.fixture(params=["small", "P1", "P2"], ids=["n16", "P1", "P2"])
def any_params(request):
    return {"small": SMALL, "P1": P1, "P2": P2}[request.param]


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


def random_polynomial(params, rng):
    return [rng.randrange(params.q) for _ in range(params.n)]


@pytest.fixture
def poly_factory(rng):
    def factory(params):
        return random_polynomial(params, rng)

    return factory
