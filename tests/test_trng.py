"""Simulated STM32F4 TRNG: rate limiting and cycle accounting."""

import pytest

from repro.machine.machine import CortexM4
from repro.trng.trng import (
    DEFAULT_CYCLES_PER_WORD,
    PESSIMISTIC_CYCLES_PER_WORD,
    SimulatedTrng,
    core_cycles_per_word,
)
from repro.trng.xorshift import Xorshift128


class TestCadenceModel:
    def test_core_cycles_per_word_paper_clocks(self):
        # 40 cycles of a 48 MHz clock at a 168 MHz core = 140 cycles.
        assert core_cycles_per_word() == 140
        assert PESSIMISTIC_CYCLES_PER_WORD == 140
        assert DEFAULT_CYCLES_PER_WORD == 40

    def test_custom_clocks(self):
        assert core_cycles_per_word(84_000_000, 48_000_000, 40) == 70


class TestWordStream:
    def test_words_match_prng(self):
        trng = SimulatedTrng(Xorshift128(4))
        ref = Xorshift128(4)
        assert [trng.read_word() for _ in range(10)] == [
            ref.next_u32() for _ in range(10)
        ]
        assert trng.words_read == 10

    def test_random_bytes(self):
        trng = SimulatedTrng(Xorshift128(4))
        assert len(trng.random_bytes(9)) == 9

    def test_default_prng(self):
        trng = SimulatedTrng()
        assert 0 <= trng.read_word() < (1 << 32)


class TestStalls:
    def test_back_to_back_reads_stall(self):
        machine = CortexM4()
        trng = SimulatedTrng(Xorshift128(1), machine=machine)
        trng.read_word()
        before = machine.cycles
        trng.read_word()  # requested immediately: must wait for cadence
        assert trng.stall_cycles > 0
        assert machine.cycles - before >= trng.cycles_per_word

    def test_slow_consumer_never_stalls(self):
        machine = CortexM4()
        trng = SimulatedTrng(
            Xorshift128(1), machine=machine, cycles_per_word=10
        )
        for _ in range(5):
            machine.tick(50)  # plenty of compute between requests
            trng.read_word()
        assert trng.stall_cycles == 0

    def test_no_machine_no_stall_accounting(self):
        trng = SimulatedTrng(Xorshift128(1))
        for _ in range(5):
            trng.read_word()
        assert trng.stall_cycles == 0

    def test_read_charges_two_loads(self):
        machine = CortexM4()
        trng = SimulatedTrng(
            Xorshift128(1), machine=machine, cycles_per_word=0
        )
        trng.read_word()
        # status poll + data read at 2 cycles each.
        assert machine.cycles == 4
