"""CLI subcommands."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "rlwe-repro" in capsys.readouterr().out


class TestSampleCommand:
    def test_prints_statistics(self, capsys):
        assert main(["sample", "--count", "2000", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "observed var" in out
        assert "LUT1/LUT2/scan" in out

    def test_p2(self, capsys):
        assert main(["sample", "--params", "P2", "--count", "500"]) == 0
        assert "P2" in capsys.readouterr().out


class TestFileWorkflow:
    def test_keygen_encrypt_decrypt(self, tmp_path, capsys):
        pub = tmp_path / "pub.bin"
        prv = tmp_path / "prv.bin"
        msg = tmp_path / "msg.txt"
        ct = tmp_path / "ct.bin"
        out = tmp_path / "out.txt"
        msg.write_bytes(b"attack at dawn")

        assert main(
            ["keygen", "--public", str(pub), "--private", str(prv),
             "--seed", "11"]
        ) == 0
        assert main(
            ["encrypt", "--public", str(pub), "--in", str(msg),
             "--out", str(ct), "--seed", "12"]
        ) == 0
        assert main(
            ["decrypt", "--private", str(prv), "--in", str(ct),
             "--out", str(out), "--length", "14"]
        ) == 0
        assert out.read_bytes() == b"attack at dawn"

    def test_oversized_message_fails(self, tmp_path, capsys):
        pub = tmp_path / "pub.bin"
        prv = tmp_path / "prv.bin"
        msg = tmp_path / "msg.txt"
        msg.write_bytes(b"x" * 100)
        main(["keygen", "--public", str(pub), "--private", str(prv)])
        rc = main(
            ["encrypt", "--public", str(pub), "--in", str(msg),
             "--out", str(tmp_path / "ct.bin")]
        )
        assert rc == 1
        assert "at most" in capsys.readouterr().err


class TestProfileCommand:
    def test_profile_roundtrip(self, capsys):
        assert main(["profile", "--params", "P1"]) == 0
        out = capsys.readouterr().out
        assert "Encryption [P1]" in out
        assert "roundtrip: OK" in out


class TestTablesCommand:
    def test_single_figure(self, capsys):
        assert main(["tables", "--only", "fig2"]) == 0
        assert "Fig. 2" in capsys.readouterr().out

    def test_fig1(self, capsys):
        assert main(["tables", "--only", "fig1"]) == 0
        assert "probability matrix" in capsys.readouterr().out
