"""CLI subcommands."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "rlwe-repro" in capsys.readouterr().out


class TestSampleCommand:
    def test_prints_statistics(self, capsys):
        assert main(["sample", "--count", "2000", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "observed var" in out
        assert "LUT1/LUT2/scan" in out

    def test_p2(self, capsys):
        assert main(["sample", "--params", "P2", "--count", "500"]) == 0
        assert "P2" in capsys.readouterr().out


class TestFileWorkflow:
    def test_keygen_encrypt_decrypt(self, tmp_path, capsys):
        pub = tmp_path / "pub.bin"
        prv = tmp_path / "prv.bin"
        msg = tmp_path / "msg.txt"
        ct = tmp_path / "ct.bin"
        out = tmp_path / "out.txt"
        msg.write_bytes(b"attack at dawn")

        assert main(
            ["keygen", "--public", str(pub), "--private", str(prv),
             "--seed", "11"]
        ) == 0
        assert main(
            ["encrypt", "--public", str(pub), "--in", str(msg),
             "--out", str(ct), "--seed", "12"]
        ) == 0
        assert main(
            ["decrypt", "--private", str(prv), "--in", str(ct),
             "--out", str(out), "--length", "14"]
        ) == 0
        assert out.read_bytes() == b"attack at dawn"

    def test_corrupt_ciphertext_is_clean_error(self, tmp_path):
        pub = tmp_path / "pub.bin"
        prv = tmp_path / "prv.bin"
        msg = tmp_path / "msg.txt"
        ct = tmp_path / "ct.bin"
        msg.write_bytes(b"x")
        main(["keygen", "--public", str(pub), "--private", str(prv)])
        main(["encrypt", "--public", str(pub), "--in", str(msg),
              "--out", str(ct)])
        ct.write_bytes(ct.read_bytes() + b"JUNK")
        with pytest.raises(SystemExit, match="not a valid ciphertext"):
            main(["decrypt", "--private", str(prv), "--in", str(ct),
                  "--out", str(tmp_path / "out")])

    def test_negative_length_is_clean_error(self, tmp_path):
        pub = tmp_path / "pub.bin"
        prv = tmp_path / "prv.bin"
        msg = tmp_path / "msg.txt"
        ct = tmp_path / "ct.bin"
        msg.write_bytes(b"x")
        main(["keygen", "--public", str(pub), "--private", str(prv)])
        main(["encrypt", "--public", str(pub), "--in", str(msg),
              "--out", str(ct)])
        with pytest.raises(SystemExit, match="non-negative"):
            main(["decrypt", "--private", str(prv), "--in", str(ct),
                  "--out", str(tmp_path / "out"), "--length", "-2"])

    def test_oversized_message_fails(self, tmp_path, capsys):
        pub = tmp_path / "pub.bin"
        prv = tmp_path / "prv.bin"
        msg = tmp_path / "msg.txt"
        msg.write_bytes(b"x" * 100)
        main(["keygen", "--public", str(pub), "--private", str(prv)])
        rc = main(
            ["encrypt", "--public", str(pub), "--in", str(msg),
             "--out", str(tmp_path / "ct.bin")]
        )
        assert rc == 1
        assert "at most" in capsys.readouterr().err


class TestProfileCommand:
    def test_profile_roundtrip(self, capsys):
        assert main(["profile", "--params", "P1"]) == 0
        out = capsys.readouterr().out
        assert "Encryption [P1]" in out
        assert "roundtrip: OK" in out


class TestTablesCommand:
    def test_single_figure(self, capsys):
        assert main(["tables", "--only", "fig2"]) == 0
        assert "Fig. 2" in capsys.readouterr().out

    def test_fig1(self, capsys):
        assert main(["tables", "--only", "fig1"]) == 0
        assert "probability matrix" in capsys.readouterr().out


class TestBackendFlag:
    def test_roundtrip_with_numpy_backend(self, tmp_path, capsys):
        from repro.backend import available_backends

        backend = (
            "numpy" if available_backends()["numpy"] else "python-packed"
        )
        pub, prv = tmp_path / "pk", tmp_path / "sk"
        msg, ct, out = tmp_path / "m", tmp_path / "c", tmp_path / "o"
        msg.write_bytes(b"backend flag")
        assert main(
            ["keygen", "--public", str(pub), "--private", str(prv),
             "--backend", backend]
        ) == 0
        assert main(
            ["encrypt", "--public", str(pub), "--in", str(msg),
             "--out", str(ct), "--backend", backend]
        ) == 0
        assert main(
            ["decrypt", "--private", str(prv), "--in", str(ct),
             "--out", str(out), "--length", "12", "--backend", backend]
        ) == 0
        assert out.read_bytes() == b"backend flag"

    def test_backend_flag_changes_nothing(self, tmp_path):
        """Backends are bit-identical: same seed, same ciphertext."""
        files = {}
        for backend in ("python-reference", "python-packed"):
            pub = tmp_path / f"pk-{backend}"
            prv = tmp_path / f"sk-{backend}"
            main(["keygen", "--seed", "44", "--public", str(pub),
                  "--private", str(prv), "--backend", backend])
            files[backend] = (pub.read_bytes(), prv.read_bytes())
        assert files["python-reference"] == files["python-packed"]


class TestBenchBackendsCommand:
    def test_smoke_and_json(self, tmp_path, capsys):
        report_path = tmp_path / "bench.json"
        assert main(
            ["bench-backends", "--batch-sizes", "1,4", "--repeats", "1",
             "--backends", "python-reference", "--json", str(report_path)]
        ) == 0
        output = capsys.readouterr().out
        assert "baseline [P1]" in output
        assert "python-reference" in output
        import json

        report = json.loads(report_path.read_text())
        assert report["benchmark"] == "backend_throughput"
        assert {row["batch_size"] for row in report["results"]} == {1, 4}
        for row in report["results"]:
            assert row["encrypt_msgs_per_sec"] > 0
            assert row["speedup_vs_single_python"] > 0


class TestRenderStats:
    def test_fused_section_rendered(self):
        from repro.cli import render_stats

        stats = {
            "ops": {
                "encrypt": {
                    "items": 12,
                    "flushes": 3,
                    "mean_batch_size": 4.0,
                    "mean_flush_ms": 1.5,
                    "max_batch_seen": 8,
                }
            },
            "fused": {
                "encrypt": {
                    "windows": 5,
                    "fused_rows": 160,
                    "keys_seen": 40,
                    "max_keys_in_window": 16,
                    "max_batch": 32,
                    "mean_rows_per_window": 32.0,
                    "keys_per_window": 8.0,
                    "mean_flush_ms": 2.0,
                    "inflight_flushes": 0,
                },
                "decrypt": {"windows": 0},
            },
            "keys": {
                "tenant-a": {
                    "encrypt": {
                        "generation": 1,
                        "items": 80,
                        "windows": 5,
                    }
                }
            },
            "executor": {"kind": "inline", "batches": 8, "items": 172},
        }
        text = render_stats(stats)
        assert "fused coalescing (cross-key windows):" in text
        assert "keys/window   8.0" in text
        assert "mean rows   32.0/32" in text
        assert "max keys   16" in text
        # Idle ops are omitted from the fused section entirely.
        assert text.count("windows") >= 1
        assert "decrypt" not in text
        assert "tenant-a" in text and "gen   1" in text

    def test_fused_section_hidden_when_idle(self):
        from repro.cli import render_stats

        stats = {
            "ops": {},
            "fused": {"encrypt": {"windows": 0}},
            "executor": {"kind": "inline"},
        }
        assert "fused coalescing" not in render_stats(stats)
