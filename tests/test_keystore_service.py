"""Keystore end-to-end: key-addressed serving across the whole stack.

Covers the server's key-addressed wire ops, default-path bit-identity
with a keystore present, pool-worker lazy key pinning (cache-miss
refetch included), mid-flight rotation under concurrent load, eviction
under load, the session facade's key handles, and client deadlines.

asyncio tests run through ``asyncio.run`` (no pytest-asyncio).  Pool
tests spawn real worker subprocesses and are kept small because CI may
offer a single core.
"""

import asyncio
import json
import struct

import pytest

from repro import P1, seeded_scheme
from repro.api import (
    AsyncRlweSession,
    DecryptionError,
    EngineUnavailableError,
    KeyNotFoundError,
    RlweSession,
    StaleKeyGenerationError,
    WireFormatError,
)
from repro.keystore import KeyStore
from repro.service import protocol
from repro.service.client import DeadlineExceeded, RlweServiceClient
from repro.service.executor import (
    InlineExecutor,
    OpRunner,
    pool_executor_for,
    serving_seed,
)
from repro.service.protocol import (
    GENERATION_CURRENT,
    OP_CREATE_KEY,
    OP_ENCRYPT,
    OP_KEY_DECRYPT,
    OP_KEY_ENCAPSULATE,
    OP_KEY_ENCRYPT,
    OP_KEY_GET_PUBLIC,
    OP_LIST_KEYS,
    OP_PING,
    OP_ROTATE_KEY,
    STATUS_BAD_REQUEST,
    STATUS_KEY_NOT_FOUND,
    STATUS_STALE_KEY_GENERATION,
    ServiceError,
)
from repro.service.server import start_server

SEED = 7


def run(coro):
    return asyncio.run(coro)


def _seeded(params, seed):
    return seeded_scheme(params, seed)


async def _start_seeded_server(seed=SEED, **kwargs):
    """A server wired exactly like ``rlwe-repro serve --seed``."""
    keypair = _seeded(P1, seed).generate_keypair()
    scheme = _seeded(P1, serving_seed(seed))
    kwargs.setdefault("keystore_seed", seed)
    return await start_server(
        scheme, port=0, keypair=keypair, max_wait=0.005, **kwargs
    )


def _ref(name, generation):
    return protocol.encode_key_ref(name, generation)


# ----------------------------------------------------------------------
# Key-addressed wire operations (inline engine)
# ----------------------------------------------------------------------
class TestKeyedWireOps:
    def test_lifecycle_and_crypto_roundtrip(self):
        async def main():
            server = await _start_seeded_server()
            try:
                async with await RlweServiceClient.connect(
                    port=server.port
                ) as client:
                    info = await client.create_key("tenant-a")
                    assert info["generation"] == 0
                    generation, public = await client.key_public_key(
                        "tenant-a"
                    )
                    assert generation == 0 and public
                    ct = await client.key_encrypt("tenant-a", 0, b"hi")
                    assert (
                        await client.key_decrypt(
                            "tenant-a", 0, ct, length=2
                        )
                        == b"hi"
                    )
                    key, cap = await client.key_encapsulate("tenant-a", 0)
                    assert (
                        await client.key_decapsulate("tenant-a", 0, cap)
                        == key
                    )
                    listed = await client.list_keys()
                    assert [k["name"] for k in listed] == ["", "tenant-a"]
                    retired = await client.retire_key("tenant-a")
                    assert retired["state"] == "retired"
                    with pytest.raises(ServiceError) as err:
                        await client.key_encrypt("tenant-a", 0, b"x")
                    assert err.value.status == STATUS_KEY_NOT_FOUND
            finally:
                await server.close()

        run(main())

    def test_rotation_staleness_statuses(self):
        async def main():
            server = await _start_seeded_server()
            try:
                async with await RlweServiceClient.connect(
                    port=server.port
                ) as client:
                    await client.create_key("t")
                    old_pub = (await client.key_public_key("t"))[1]
                    info = await client.rotate_key("t")
                    assert info["generation"] == 1
                    with pytest.raises(ServiceError) as err:
                        await client.key_encrypt("t", 0, b"x")
                    assert (
                        err.value.status == STATUS_STALE_KEY_GENERATION
                    )
                    generation, new_pub = await client.key_public_key("t")
                    assert generation == 1 and new_pub != old_pub
                    ct = await client.key_encrypt("t", 1, b"ok")
                    assert (
                        await client.key_decrypt("t", 1, ct, length=2)
                        == b"ok"
                    )
                    # Pinned fetch of the superseded generation is
                    # stale too — material is never served for it.
                    with pytest.raises(ServiceError) as err:
                        await client.key_public_key("t", 0)
                    assert (
                        err.value.status == STATUS_STALE_KEY_GENERATION
                    )
            finally:
                await server.close()

        run(main())

    def test_keyed_request_validation(self):
        async def main():
            server = await _start_seeded_server()
            try:
                async with await RlweServiceClient.connect(
                    port=server.port
                ) as client:
                    await client.create_key("t")
                    # Crypto must pin a concrete generation.
                    with pytest.raises(ServiceError) as err:
                        await client.request(
                            OP_KEY_ENCRYPT,
                            _ref("t", GENERATION_CURRENT) + b"x",
                        )
                    assert err.value.status == STATUS_BAD_REQUEST
                    # Truncated / malformed key refs are bad requests,
                    # at every offset, and never kill the connection.
                    ref = _ref("t", 0)
                    for cut in range(len(ref)):
                        with pytest.raises(ServiceError) as err:
                            await client.request(
                                OP_KEY_ENCRYPT, ref[:cut]
                            )
                        assert err.value.status == STATUS_BAD_REQUEST
                    # Payload validation matches the unkeyed ops.
                    with pytest.raises(ServiceError) as err:
                        await client.key_encrypt("t", 0, b"x" * 100)
                    assert err.value.status == STATUS_BAD_REQUEST
                    with pytest.raises(ServiceError) as err:
                        await client.key_decrypt("t", 0, b"garbage")
                    assert err.value.status == STATUS_BAD_REQUEST
                    with pytest.raises(ServiceError) as err:
                        await client.request(
                            OP_KEY_ENCAPSULATE, _ref("t", 0) + b"junk"
                        )
                    assert err.value.status == STATUS_BAD_REQUEST
                    with pytest.raises(ServiceError) as err:
                        await client.request(
                            OP_KEY_GET_PUBLIC, _ref("t", 0) + b"junk"
                        )
                    assert err.value.status == STATUS_BAD_REQUEST
                    with pytest.raises(ServiceError) as err:
                        await client.request(OP_LIST_KEYS, b"junk")
                    assert err.value.status == STATUS_BAD_REQUEST
                    with pytest.raises(ServiceError) as err:
                        await client.request(OP_CREATE_KEY, b"\xff\xfe")
                    assert err.value.status == STATUS_BAD_REQUEST
                    # The connection survived all of the above.
                    assert await client.ping(b"alive") == b"alive"
            finally:
                await server.close()

        run(main())

    def test_stats_nest_per_key(self):
        async def main():
            server = await _start_seeded_server()
            try:
                async with await RlweServiceClient.connect(
                    port=server.port
                ) as client:
                    await client.create_key("tenant-a")
                    await client.create_key("tenant-b")
                    await asyncio.gather(
                        *(
                            client.key_encrypt("tenant-a", 0, b"a")
                            for _ in range(4)
                        ),
                        *(
                            client.key_encapsulate("tenant-b", 0)
                            for _ in range(2)
                        ),
                        client.encrypt(b"default"),
                    )
                    stats = await client.stats()
                    assert stats["ops"]["encrypt"]["items"] == 1
                    assert (
                        stats["keys"]["tenant-a"]["encrypt"]["items"] == 4
                    )
                    assert (
                        stats["keys"]["tenant-b"]["encapsulate"]["items"]
                        == 2
                    )
                    assert stats["keys"]["tenant-a"]["encrypt"][
                        "generation"
                    ] == 0
                    ks = stats["keystore"]
                    assert ks["keys"] == 2 and ks["has_default"]
                    assert "pinned" in ks
                    # Cross-key fusion counters, per op.
                    fused = stats["fused"]["encrypt"]
                    assert fused["fused_rows"] == 4
                    assert fused["windows"] >= 1
                    assert fused["keys_per_window"] >= 1.0
                    assert fused["max_keys_in_window"] >= 1
                    assert fused["max_batch"] == 32
                    assert (
                        stats["fused"]["encapsulate"]["fused_rows"] == 2
                    )
            finally:
                await server.close()

        run(main())


# ----------------------------------------------------------------------
# Default-key path stays bit-identical with a keystore present
# ----------------------------------------------------------------------
class TestDefaultPathUnchanged:
    def test_admin_traffic_does_not_shift_default_stream(self):
        async def main():
            # Reference: a keystore-free default path (the facade's
            # local engine replays serve --seed exactly).
            reference = await AsyncRlweSession.open(
                "local", params=P1, seed=SEED
            )
            expected = [
                await reference.encrypt(b"m0"),
                await reference.encrypt(b"m1"),
            ]
            await reference.aclose()

            server = await _start_seeded_server()
            try:
                async with await RlweServiceClient.connect(
                    port=server.port
                ) as client:
                    # Heavy keystore *admin* traffic first: creation,
                    # rotation, listing, and public-key fetches draw
                    # from per-key derived streams, never the serving
                    # stream.
                    for index in range(6):
                        await client.create_key(f"tenant-{index}")
                    await client.rotate_key("tenant-0")
                    await client.list_keys()
                    await client.key_public_key("tenant-3")
                    got = [
                        await client.encrypt(b"m0"),
                        await client.encrypt(b"m1"),
                    ]
                    assert got == expected
            finally:
                await server.close()

        run(main())


# ----------------------------------------------------------------------
# Pool engine: lazy pinning, cache-miss refetch, respawn
# ----------------------------------------------------------------------
class TestPoolKeyRouting:
    def _materials(self, seed=SEED):
        keypair = _seeded(P1, seed).generate_keypair()
        store = KeyStore(P1, seed=seed, default_keypair=keypair)
        store.create("tenant-a")
        return keypair, store

    def test_pool1_keyed_batches_match_inline(self):
        keypair, store = self._materials()
        material = store.materialize("tenant-a")
        inline = InlineExecutor(
            OpRunner(_seeded(P1, serving_seed(SEED)), keypair)
        )
        bodies = [b"one", b"two", b"three"]

        async def run_inline():
            return await inline.run_batch(
                OP_ENCRYPT, bodies, key=material
            )

        async def run_pool():
            executor = pool_executor_for(
                _seeded(P1, serving_seed(SEED)),
                keypair,
                seed=serving_seed(SEED),
                workers=1,
            )
            await executor.start()
            try:
                return await executor.run_batch(
                    OP_ENCRYPT, bodies, key=material
                )
            finally:
                await executor.close()

        assert run(run_inline()) == run(run_pool())

    def test_cache_miss_refetch(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_FAULT_HOOKS", "1")
        keypair, store = self._materials()
        material = store.materialize("tenant-a")

        async def main():
            executor = pool_executor_for(
                _seeded(P1, serving_seed(SEED)),
                keypair,
                seed=serving_seed(SEED),
                workers=1,
            )
            await executor.start()
            try:
                first = await executor.run_batch(
                    OP_ENCRYPT, [b"a"], key=material
                )
                assert isinstance(first[0], bytes)
                assert executor.stats()["key_installs"] == 1
                # Evict the key from the shard's own cache behind the
                # parent's back; the next keyed batch must observe the
                # miss, reinstall, and still succeed.
                await executor.run_batch(OP_PING, [b"drop-key:tenant-a"])
                second = await executor.run_batch(
                    OP_ENCRYPT, [b"b"], key=material
                )
                assert isinstance(second[0], bytes)
                stats = executor.stats()
                assert stats["key_refetches"] == 1
                assert stats["key_installs"] == 2
            finally:
                await executor.close()

        run(main())

    def test_respawned_worker_repins_lazily(self):
        keypair, store = self._materials()
        material = store.materialize("tenant-a")

        async def main():
            executor = pool_executor_for(
                _seeded(P1, serving_seed(SEED)),
                keypair,
                seed=serving_seed(SEED),
                workers=1,
            )
            await executor.start()
            try:
                await executor.run_batch(
                    OP_ENCRYPT, [b"a"], key=material
                )
                victim = executor._pool[0]
                victim.proc.kill()
                await victim.proc.wait()
                deadline = asyncio.get_running_loop().time() + 30
                while executor.alive_workers() == 0:
                    assert (
                        asyncio.get_running_loop().time() < deadline
                    ), "respawn never landed"
                    await asyncio.sleep(0.05)
                # The fresh shard has an empty cache; the key is
                # reinstalled lazily, not broadcast at spawn.
                result = await executor.run_batch(
                    OP_ENCRYPT, [b"b"], key=material
                )
                assert isinstance(result[0], bytes)
                assert executor.stats()["key_installs"] == 2
            finally:
                await executor.close()

        run(main())


# ----------------------------------------------------------------------
# Rotation under concurrent load (pool server, facade client)
# ----------------------------------------------------------------------
class TestRotationUnderLoad:
    def test_mid_flight_rotation_fails_only_stale_requests(self):
        async def main():
            executor_keypair = _seeded(P1, SEED).generate_keypair()
            scheme = _seeded(P1, serving_seed(SEED))
            executor = pool_executor_for(
                scheme,
                executor_keypair,
                seed=serving_seed(SEED),
                workers=2,
            )
            server = await _start_seeded_server(executor=executor)
            try:
                session = await AsyncRlweSession.open(
                    f"tcp://127.0.0.1:{server.port}"
                )
                try:
                    await session.create_key("tenant-a")
                    handle = await session.key("tenant-a")

                    async def one(i):
                        try:
                            ct = await handle.encrypt(b"m%02d" % i)
                            return ("ok", ct)
                        except StaleKeyGenerationError:
                            return ("stale", None)

                    # Old-generation requests race the rotation.
                    first_wave = asyncio.gather(
                        *(one(i) for i in range(12))
                    )
                    await session.rotate_key("tenant-a")
                    outcomes = await first_wave
                    # Every request either served under generation 0
                    # or failed with the *typed* stale error — nothing
                    # else.
                    assert {kind for kind, _ in outcomes} <= {
                        "ok",
                        "stale",
                    }
                    # Whatever succeeded decrypts correctly under the
                    # pinned generation 0... which is now stale, so
                    # decrypt via a fresh handle is impossible — the
                    # server no longer serves that generation.  That
                    # asymmetry is the contract: rotation invalidates.
                    await handle.refresh()
                    assert handle.generation == 1
                    # Multi-worker streams are schedule-dependent, so
                    # tolerate the scheme's natural ~1%-per-ciphertext
                    # decryption failures with a bounded retry; what
                    # must never happen post-refresh is a key error.
                    for i in range(8):
                        expected = b"n%02d" % i
                        for _ in range(5):
                            ct = await handle.encrypt(expected)
                            plain = await handle.decrypt(ct, length=3)
                            if plain == expected:
                                break
                        assert plain == expected
                    infos = {
                        info.name: info.generation
                        for info in await session.list_keys()
                    }
                    assert infos["tenant-a"] == 1
                finally:
                    await session.aclose()
            finally:
                await server.close()

        run(main())


# ----------------------------------------------------------------------
# Eviction under load
# ----------------------------------------------------------------------
class TestEvictionUnderLoad:
    def test_hot_cache_thrash_serves_correctly(self):
        async def main():
            server = await _start_seeded_server(hot_keys=2)
            try:
                async with await RlweServiceClient.connect(
                    port=server.port
                ) as client:
                    names = [f"tenant-{i}" for i in range(4)]
                    for name in names:
                        await client.create_key(name)
                    # Round-robin traffic across 4 keys through a
                    # 2-slot hot cache: every request must still serve
                    # correctly, with the store re-materializing
                    # evicted keys on demand.
                    for round_index in range(3):
                        for name in names:
                            ct = await client.key_encrypt(
                                name, 0, name.encode()
                            )
                            plain = await client.key_decrypt(
                                name, 0, ct, length=len(name)
                            )
                            assert plain == name.encode()
                    stats = await client.stats()
                    ks = stats["keystore"]
                    assert ks["hot"] <= 2
                    assert ks["evictions"] > 0
                    assert ks["materializations"] > 4
            finally:
                await server.close()

        run(main())


# ----------------------------------------------------------------------
# Fused windows: cross-key coalescing and bounded per-key bookkeeping
# ----------------------------------------------------------------------
class TestKeyedWindowBound:
    def test_one_window_fuses_many_keys(self):
        from repro.service.coalescer import FusedBatcherGroup

        async def main():
            seen = []

            async def flush(tags, bodies):
                seen.append((list(tags), list(bodies)))
                return [
                    name.encode() + b":" + body
                    for (name, _gen), body in zip(tags, bodies)
                ]

            group = FusedBatcherGroup(
                flush, max_batch=4, max_wait=0.05, max_keys=8
            )
            # Four items under three different keys coalesce into ONE
            # flushed window — the whole point of fusion.
            results = await asyncio.gather(
                group.submit("a", 0, b"w"),
                group.submit("b", 0, b"x"),
                group.submit("c", 3, b"y"),
                group.submit("a", 0, b"z"),
            )
            assert results == [b"a:w", b"b:x", b"c:y", b"a:z"]
            assert len(seen) == 1
            tags, bodies = seen[0]
            assert tags == [("a", 0), ("b", 0), ("c", 3), ("a", 0)]
            fused = group.stats_fused()
            assert fused["windows"] == 1
            assert fused["fused_rows"] == 4
            assert fused["keys_per_window"] == 3.0
            assert fused["max_keys_in_window"] == 3
            per_key = group.stats_by_key()
            assert per_key["a"]["items"] == 2
            assert per_key["a"]["windows"] == 1
            assert per_key["c"]["generation"] == 3
            await group.drain()

        run(main())

    def test_idle_key_stats_lru_out(self):
        from repro.service.coalescer import FusedBatcherGroup

        async def main():
            async def flush(tags, bodies):
                return list(bodies)

            group = FusedBatcherGroup(
                flush, max_batch=1, max_wait=0.005, max_keys=2
            )
            for name in ("a", "b", "c"):
                assert await group.submit(name, 0, b"y") == b"y"
            live = group.stats_by_key()
            # Only the stat entries are bounded; items never drop.
            assert len(live) <= 2
            assert "a" not in live
            assert await group.submit("a", 0, b"z") == b"z"
            assert "a" in group.stats_by_key()
            await group.drain()

        run(main())

    def test_max_keys_validated(self):
        from repro.service.coalescer import FusedBatcherGroup

        with pytest.raises(ValueError):
            FusedBatcherGroup(lambda t, b: None, max_keys=0)


# ----------------------------------------------------------------------
# Facade key handles (sync flavor, local engine)
# ----------------------------------------------------------------------
class TestFacadeKeyHandles:
    def test_handle_lifecycle_and_ops(self):
        with RlweSession.open("local", params=P1, seed=SEED) as session:
            info = session.create_key("tenant-a")
            assert info.generation == 0 and info.params == "P1"
            handle = session.key("tenant-a")
            ct = handle.encrypt(b"hello")
            assert handle.decrypt(ct, length=5) == b"hello"
            cts = handle.encrypt_many([b"a", b"b"])
            assert handle.decrypt_many(cts, length=1) == [b"a", b"b"]
            key, cap = handle.encapsulate()
            assert handle.decapsulate(cap) == key
            pairs = handle.encapsulate_many(3)
            assert handle.decapsulate_many(
                [cap for _, cap in pairs]
            ) == [key for key, _ in pairs]
            # Rotation via the handle re-pins it.
            old_public = handle.public_key_bytes
            handle.rotate()
            assert handle.generation == 1
            assert handle.public_key_bytes != old_public
            assert handle.info().generation == 1

    def test_stale_handle_raises_typed_error(self):
        with RlweSession.open("local", params=P1, seed=SEED) as session:
            session.create_key("t")
            handle = session.key("t")
            session.rotate_key("t")
            with pytest.raises(StaleKeyGenerationError):
                handle.encrypt(b"x")
            handle.refresh()
            assert handle.generation == 1
            assert handle.decrypt(handle.encrypt(b"y"), length=1) == b"y"

    def test_missing_and_retired_keys_typed(self):
        with RlweSession.open("local", params=P1, seed=SEED) as session:
            with pytest.raises(KeyNotFoundError):
                session.key("ghost")
            session.create_key("t")
            handle = session.key("t")
            session.retire_key("t")
            with pytest.raises(KeyNotFoundError):
                handle.encrypt(b"x")
            with pytest.raises(KeyNotFoundError):
                session.rotate_key("t")

    def test_bad_names_typed(self):
        with RlweSession.open("local", params=P1, seed=SEED) as session:
            for name in ("", "no spaces allowed", "x" * 65):
                with pytest.raises(WireFormatError):
                    session.create_key(name)
                with pytest.raises(WireFormatError):
                    session.key(name)

    def test_tenant_isolation_on_decapsulate(self):
        with RlweSession.open("local", params=P1, seed=SEED) as session:
            session.create_key("tenant-a")
            session.create_key("tenant-b")
            a = session.key("tenant-a")
            b = session.key("tenant-b")
            _, cap = a.encapsulate()
            # The KEM's key confirmation rejects cross-tenant blobs.
            with pytest.raises(DecryptionError):
                b.decapsulate(cap)

    def test_named_keys_identical_across_engines(self):
        with RlweSession.open("local", params=P1, seed=SEED) as local:
            local.create_key("t")
            local_handle = local.key("t")
            local_public = local_handle.public_key_bytes
        with RlweSession.open("pool:1", params=P1, seed=SEED) as pooled:
            pooled.create_key("t")
            handle = pooled.key("t")
            assert handle.public_key_bytes == local_public
            ct = handle.encrypt(b"cross")
            assert handle.decrypt(ct, length=5) == b"cross"

    def test_session_stats_count_keyed_ops(self):
        with RlweSession.open("local", params=P1, seed=SEED) as session:
            session.create_key("t")
            handle = session.key("t")
            handle.encrypt(b"x")
            handle.encrypt_many([b"a", b"b"])
            stats = session.stats()
            assert stats["ops"]["encrypt"] == 3
            assert stats["transport"]["keystore"]["keys"] == 1


# ----------------------------------------------------------------------
# Client deadlines (satellite: no more unbounded hangs)
# ----------------------------------------------------------------------
class TestClientDeadlines:
    def test_request_deadline_fires_on_silent_server(self):
        async def main():
            async def handle(reader, writer):
                # Read frames forever, never answer.
                try:
                    while await reader.read(1024):
                        pass
                except ConnectionError:
                    pass

            silent = await asyncio.start_server(
                handle, "127.0.0.1", 0
            )
            port = silent.sockets[0].getsockname()[1]
            try:
                client = await RlweServiceClient.connect(
                    port=port, request_timeout=0.2
                )
                try:
                    with pytest.raises(DeadlineExceeded):
                        await client.ping()
                finally:
                    await client.close()
            finally:
                silent.close()
                await silent.wait_closed()

        run(main())

    def test_facade_maps_deadline_to_engine_unavailable(self):
        async def main():
            async def handle(reader, writer):
                # Answer the public-key fetch so the session opens,
                # then go silent.
                from repro.core import serialize

                served = {"public": False}
                scheme = _seeded(P1, SEED)
                public_bytes = serialize.serialize_public_key(
                    scheme.generate_keypair().public
                )
                try:
                    while True:
                        payload = await protocol.read_frame(reader)
                        if payload is None:
                            return
                        request = protocol.decode_request(payload)
                        if not served["public"]:
                            served["public"] = True
                            protocol.write_frame(
                                writer,
                                protocol.encode_response(
                                    protocol.Response(
                                        request.request_id,
                                        0,
                                        public_bytes,
                                    )
                                ),
                            )
                            await writer.drain()
                        # later requests: silence
                except (ConnectionError, ValueError):
                    pass

            silent = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = silent.sockets[0].getsockname()[1]
            try:
                session = await AsyncRlweSession.open(
                    f"tcp://127.0.0.1:{port}",
                    request_timeout=0.2,
                )
                try:
                    with pytest.raises(EngineUnavailableError):
                        await session.encrypt(b"x")
                finally:
                    await session.aclose()
            finally:
                silent.close()
                await silent.wait_closed()

        run(main())

    def test_default_client_has_no_deadline(self):
        async def main():
            server = await _start_seeded_server()
            try:
                client = await RlweServiceClient.connect(
                    port=server.port
                )
                assert client.request_timeout is None
                assert await client.ping(b"ok") == b"ok"
                await client.close()
            finally:
                await server.close()

        run(main())
