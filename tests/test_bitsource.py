"""BitSource implementations and the LSB-first convention."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trng.bitsource import (
    PrngBitSource,
    QueueBitSource,
    RandomnessExhausted,
)
from repro.trng.xorshift import Xorshift128


class TestQueueBitSource:
    def test_delivers_in_order(self):
        src = QueueBitSource([1, 0, 1, 1])
        assert [src.bit() for _ in range(4)] == [1, 0, 1, 1]

    def test_exhaustion_raises(self):
        src = QueueBitSource([1])
        src.bit()
        with pytest.raises(RandomnessExhausted):
            src.bit()

    def test_from_integer_lsb_first(self):
        src = QueueBitSource.from_integer(0b1101, 4)
        assert [src.bit() for _ in range(4)] == [1, 0, 1, 1]

    def test_remaining(self):
        src = QueueBitSource([0, 1, 0])
        src.bit()
        assert src.remaining == 2

    def test_non_bit_rejected(self):
        src = QueueBitSource([2])
        with pytest.raises(ValueError):
            src.bit()


class TestBitsAggregation:
    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    @settings(max_examples=100)
    def test_bits_roundtrip(self, value):
        src = QueueBitSource.from_integer(value, 16)
        assert src.bits(16) == value

    def test_bits_zero_count(self):
        src = QueueBitSource([1, 0])
        assert src.bits(0) == 0
        assert src.bits_consumed == 0

    def test_bits_negative_rejected(self):
        with pytest.raises(ValueError):
            QueueBitSource([]).bits(-1)

    def test_consumption_counter(self):
        src = QueueBitSource([1] * 20)
        src.bits(8)
        src.bit()
        assert src.bits_consumed == 9


class TestPrngBitSource:
    def test_matches_word_stream_lsb_first(self):
        src = PrngBitSource(Xorshift128(9))
        ref = Xorshift128(9)
        expected = []
        for _ in range(3):
            word = ref.next_u32()
            expected.extend((word >> i) & 1 for i in range(32))
        assert [src.bit() for _ in range(96)] == expected
        assert src.words_fetched == 3

    def test_bits_spanning_word_boundary(self):
        src = PrngBitSource(Xorshift128(10))
        ref = Xorshift128(10)
        w0, w1 = ref.next_u32(), ref.next_u32()
        combined = w0 | (w1 << 32)
        src.bits(30)
        assert src.bits(8) == (combined >> 30) & 0xFF


class TestBitChunks:
    """Bulk chunk extraction must consume the exact scalar bit stream."""

    @pytest.mark.parametrize("width", [1, 5, 8, 13])
    @pytest.mark.parametrize("misalign", [0, 3, 31])
    def test_prng_bulk_matches_scalar(self, width, misalign):
        bulk = PrngBitSource(Xorshift128(123))
        scalar = PrngBitSource(Xorshift128(123))
        if misalign:
            assert bulk.bits(misalign) == scalar.bits(misalign)
        count = 150  # large enough to trigger the vectorized path
        assert bulk.bit_chunks(count, width) == [
            scalar.bits(width) for _ in range(count)
        ]
        assert bulk.bits_consumed == scalar.bits_consumed
        assert bulk.words_fetched == scalar.words_fetched
        # The stream continues identically after the bulk draw.
        assert [bulk.bits(7) for _ in range(40)] == [
            scalar.bits(7) for _ in range(40)
        ]

    def test_chunk_array_matches_chunks(self):
        a = PrngBitSource(Xorshift128(5))
        b = PrngBitSource(Xorshift128(5))
        assert list(map(int, a.bit_chunk_array(200, 8))) == b.bit_chunks(
            200, 8
        )

    def test_queue_source_default_path(self):
        source = QueueBitSource([1, 0, 1, 1, 0, 0, 1, 0])
        assert source.bit_chunks(2, 4) == [0b1101, 0b0100]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            PrngBitSource(Xorshift128(1)).bit_chunks(-1, 8)

    def test_forced_scalar_fallback_identical(self, monkeypatch):
        from repro.numpy_support import FORCE_NO_NUMPY_ENV

        fast = PrngBitSource(Xorshift128(9)).bit_chunks(300, 8)
        monkeypatch.setenv(FORCE_NO_NUMPY_ENV, "1")
        slow = PrngBitSource(Xorshift128(9)).bit_chunks(300, 8)
        assert fast == slow
