"""BitSource implementations and the LSB-first convention."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trng.bitsource import (
    PrngBitSource,
    QueueBitSource,
    RandomnessExhausted,
)
from repro.trng.xorshift import Xorshift128


class TestQueueBitSource:
    def test_delivers_in_order(self):
        src = QueueBitSource([1, 0, 1, 1])
        assert [src.bit() for _ in range(4)] == [1, 0, 1, 1]

    def test_exhaustion_raises(self):
        src = QueueBitSource([1])
        src.bit()
        with pytest.raises(RandomnessExhausted):
            src.bit()

    def test_from_integer_lsb_first(self):
        src = QueueBitSource.from_integer(0b1101, 4)
        assert [src.bit() for _ in range(4)] == [1, 0, 1, 1]

    def test_remaining(self):
        src = QueueBitSource([0, 1, 0])
        src.bit()
        assert src.remaining == 2

    def test_non_bit_rejected(self):
        src = QueueBitSource([2])
        with pytest.raises(ValueError):
            src.bit()


class TestBitsAggregation:
    @given(st.integers(min_value=0, max_value=(1 << 16) - 1))
    @settings(max_examples=100)
    def test_bits_roundtrip(self, value):
        src = QueueBitSource.from_integer(value, 16)
        assert src.bits(16) == value

    def test_bits_zero_count(self):
        src = QueueBitSource([1, 0])
        assert src.bits(0) == 0
        assert src.bits_consumed == 0

    def test_bits_negative_rejected(self):
        with pytest.raises(ValueError):
            QueueBitSource([]).bits(-1)

    def test_consumption_counter(self):
        src = QueueBitSource([1] * 20)
        src.bits(8)
        src.bit()
        assert src.bits_consumed == 9


class TestPrngBitSource:
    def test_matches_word_stream_lsb_first(self):
        src = PrngBitSource(Xorshift128(9))
        ref = Xorshift128(9)
        expected = []
        for _ in range(3):
            word = ref.next_u32()
            expected.extend((word >> i) & 1 for i in range(32))
        assert [src.bit() for _ in range(96)] == expected
        assert src.words_fetched == 3

    def test_bits_spanning_word_boundary(self):
        src = PrngBitSource(Xorshift128(10))
        ref = Xorshift128(10)
        w0, w1 = ref.next_u32(), ref.next_u32()
        combined = w0 | (w1 << 32)
        src.bits(30)
        assert src.bits(8) == (combined >> 30) & 0xFF
