"""SIMD NTT cycle model: bit-exactness and the modelled saving."""

import random

import pytest

from repro.core.params import P1, P2
from repro.cyclemodel.ntt_cycles import ntt_forward_packed, ntt_inverse_packed
from repro.cyclemodel.ntt_simd import ntt_forward_simd, ntt_inverse_simd
from repro.machine.machine import CortexM4
from repro.ntt.reference import ntt_forward, ntt_inverse
from tests.conftest import SMALL


def poly(params, seed=0):
    rng = random.Random(seed)
    return [rng.randrange(params.q) for _ in range(params.n)]


@pytest.mark.parametrize("params", [SMALL, P1, P2], ids=["n16", "P1", "P2"])
class TestBitExactness:
    def test_forward(self, params):
        a = poly(params, 1)
        result, _ = CortexM4().measure(ntt_forward_simd, a, params)
        assert result == ntt_forward(a, params)

    def test_inverse(self, params):
        a = poly(params, 2)
        result, _ = CortexM4().measure(ntt_inverse_simd, a, params)
        assert result == ntt_inverse(a, params)

    def test_roundtrip(self, params):
        a = poly(params, 3)
        fwd, _ = CortexM4().measure(ntt_forward_simd, a, params)
        back, _ = CortexM4().measure(ntt_inverse_simd, fwd, params)
        assert back == a


@pytest.mark.parametrize("params", [P1, P2], ids=["P1", "P2"])
class TestSaving:
    def test_simd_beats_packed(self, params):
        a = poly(params, 4)
        _, packed = CortexM4().measure(ntt_forward_packed, a, params)
        _, simd = CortexM4().measure(ntt_forward_simd, a, params)
        saving = 1 - simd / packed
        # The DSP extension removes pack/unpack ALU and halves the
        # modular add/sub work: expect a 10-30% kernel-level gain.
        assert 0.10 < saving < 0.30

    def test_simd_inverse_beats_packed(self, params):
        a = poly(params, 5)
        _, packed = CortexM4().measure(ntt_inverse_packed, a, params)
        _, simd = CortexM4().measure(ntt_inverse_simd, a, params)
        assert simd < packed

    def test_cost_data_independent(self, params):
        a, b = poly(params, 6), poly(params, 7)
        _, ca = CortexM4().measure(ntt_forward_simd, a, params)
        _, cb = CortexM4().measure(ntt_forward_simd, b, params)
        assert abs(ca - cb) / ca < 0.02
