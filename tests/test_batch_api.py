"""Batched scheme/KEM APIs and the phased block sampler."""

import pytest

from repro import seeded_scheme
from repro.backend import available_backends
from repro.core import encoding
from repro.core.kem import RlweKem
from repro.core.params import P1, P2
from repro.numpy_support import FORCE_NO_NUMPY_ENV
from repro.sampler.lut_sampler import LutKnuthYaoSampler
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitsource import PrngBitSource
from repro.trng.xorshift import Xorshift128

BACKENDS = [name for name, ok in available_backends().items() if ok]


def messages(params, count):
    size = min(32, params.message_bytes)
    return [bytes([(i + j) % 256 for j in range(size)]) for i in range(count)]


class TestEncryptBatch:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_roundtrip(self, backend):
        scheme = seeded_scheme(P1, seed=0, backend=backend)
        keypair = scheme.generate_keypair()
        batch = messages(P1, 16)
        ciphertexts = scheme.encrypt_batch(keypair.public, batch)
        assert len(ciphertexts) == len(batch)
        decrypted = scheme.decrypt_batch(
            keypair.private, ciphertexts, length=32
        )
        # The scheme has a ~1% per-message decryption-failure rate at
        # these legacy parameters; the seed above round-trips cleanly
        # (failures are deterministic under a seed).
        assert decrypted == batch

    def test_batch_matches_across_backends(self):
        outputs = {}
        for backend in BACKENDS:
            scheme = seeded_scheme(P2, seed=5, backend=backend)
            keypair = scheme.generate_keypair()
            ciphertexts = scheme.encrypt_batch(
                keypair.public, messages(P2, 9)
            )
            outputs[backend] = [
                (ct.c1_hat, ct.c2_hat) for ct in ciphertexts
            ]
        reference = outputs["python-reference"]
        for backend, got in outputs.items():
            assert got == reference, backend

    def test_batch_matches_forced_no_numpy(self, monkeypatch):
        def run():
            scheme = seeded_scheme(P1, seed=13)
            keypair = scheme.generate_keypair()
            ciphertexts = scheme.encrypt_batch(
                keypair.public, messages(P1, 8)
            )
            plain = scheme.decrypt_batch(keypair.private, ciphertexts)
            return [(ct.c1_hat, ct.c2_hat) for ct in ciphertexts], plain

        with_numpy = run()
        monkeypatch.setenv(FORCE_NO_NUMPY_ENV, "1")
        without_numpy = run()
        assert with_numpy == without_numpy

    def test_empty_batch(self):
        scheme = seeded_scheme(P1, seed=1)
        keypair = scheme.generate_keypair()
        assert scheme.encrypt_batch(keypair.public, []) == []
        assert scheme.decrypt_batch(keypair.private, []) == []

    def test_oversized_message_rejected(self):
        scheme = seeded_scheme(P1, seed=1)
        keypair = scheme.generate_keypair()
        too_big = bytes(P1.message_bytes + 1)
        with pytest.raises(ValueError, match="exceeds"):
            scheme.encrypt_batch(keypair.public, [too_big])

    def test_wrong_parameter_set_rejected(self):
        scheme_p1 = seeded_scheme(P1, seed=1)
        scheme_p2 = seeded_scheme(P2, seed=1)
        keypair_p2 = scheme_p2.generate_keypair()
        with pytest.raises(ValueError, match="parameter set"):
            scheme_p1.encrypt_batch(keypair_p2.public, messages(P1, 2))

    def test_decrypt_batch_mixed_params_rejected(self):
        scheme_p1 = seeded_scheme(P1, seed=1)
        scheme_p2 = seeded_scheme(P2, seed=1)
        kp1 = scheme_p1.generate_keypair()
        kp2 = scheme_p2.generate_keypair()
        ct_p2 = scheme_p2.encrypt(kp2.public, b"x")
        with pytest.raises(ValueError, match="parameter set"):
            scheme_p1.decrypt_polynomial_batch(kp1.private, [ct_p2])


class TestEncodeBatch:
    def test_matches_single_encoder(self):
        batch = messages(P1, 10) + [b"", b"\x01"]
        encoded = encoding.encode_bytes_batch(batch, P1)
        expected = [encoding.encode_bytes(m, P1) for m in batch]
        assert [list(map(int, row)) for row in encoded] == expected

    def test_capacity_enforced(self):
        with pytest.raises(ValueError, match="exceeds"):
            encoding.encode_bytes_batch([bytes(P1.message_bytes + 1)], P1)


class TestKemBatch:
    def test_encapsulate_many_roundtrip(self):
        scheme = seeded_scheme(P1, seed=33)
        kem = RlweKem(scheme)
        keypair = scheme.generate_keypair()
        results = kem.encapsulate_many(keypair.public, 12)
        assert len(results) == 12
        agreed = 0
        for encapsulation, sender_secret in results:
            try:
                receiver = kem.decapsulate(
                    keypair.private, keypair.public, encapsulation
                )
            except Exception:
                continue
            assert receiver.key == sender_secret.key
            agreed += 1
        # Decryption failures are ~1%/message; the overwhelming majority
        # of a 12-message batch must agree.
        assert agreed >= 10

    def test_encapsulate_many_backend_independent(self):
        outputs = {}
        for backend in BACKENDS:
            scheme = seeded_scheme(P1, seed=17, backend=backend)
            kem = RlweKem(scheme)
            keypair = scheme.generate_keypair()
            outputs[backend] = [
                (enc.ciphertext.c1_hat, enc.tag, secret.key)
                for enc, secret in kem.encapsulate_many(keypair.public, 5)
            ]
        reference = outputs["python-reference"]
        for backend, got in outputs.items():
            assert got == reference, backend

    def test_negative_count_rejected(self):
        scheme = seeded_scheme(P1, seed=1)
        kem = RlweKem(scheme)
        keypair = scheme.generate_keypair()
        with pytest.raises(ValueError):
            kem.encapsulate_many(keypair.public, -1)


class TestBlockSampler:
    def make_sampler(self, seed):
        return LutKnuthYaoSampler(
            ProbabilityMatrix.for_params(P1),
            P1.q,
            PrngBitSource(Xorshift128(seed)),
        )

    def test_scalar_and_numpy_paths_identical(self, monkeypatch):
        fast = self.make_sampler(8).sample_block(3000)
        monkeypatch.setenv(FORCE_NO_NUMPY_ENV, "1")
        slow = self.make_sampler(8).sample_block(3000)
        assert list(map(int, fast)) == slow

    def test_statistics_counters(self):
        sampler = self.make_sampler(4)
        count = 5000
        sampler.sample_block(count)
        assert (
            sampler.lut1_hits + sampler.lut2_hits + sampler.scan_fallbacks
            == count
        )
        # Paper: LUT1 resolves ~97% of samples at these parameters.
        assert sampler.lut1_hits > 0.9 * count

    def test_values_in_range(self):
        block = self.make_sampler(2).sample_block(2000)
        assert all(0 <= int(v) < P1.q for v in block)

    def test_distribution_moments(self):
        block = self.make_sampler(6).sample_block(20000)
        centered = [
            int(v) if int(v) <= P1.q // 2 else int(v) - P1.q for v in block
        ]
        mean = sum(centered) / len(centered)
        variance = sum((c - mean) ** 2 for c in centered) / len(centered)
        assert abs(mean) < 0.15
        assert abs(variance - P1.sigma**2) < 1.0

    def test_polynomial_block_shape(self):
        polys = self.make_sampler(3).sample_polynomial_block(5, P1.n)
        assert len(polys) == 5
        assert all(len(poly) == P1.n for poly in polys)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            self.make_sampler(1).sample_block(-1)
