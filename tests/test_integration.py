"""Cross-module integration tests: the full stack working together."""

import random

import pytest

from repro import P1, P2, seeded_scheme
from repro.core import serialize
from repro.cyclemodel.scheme_cycles import (
    decrypt_cycles,
    encrypt_cycles,
    keygen_cycles,
)
from repro.machine.machine import CortexM4
from repro.trng.bitpool import BitPool
from repro.trng.bitsource import PrngBitSource
from repro.trng.trng import SimulatedTrng
from repro.trng.xorshift import Xorshift128


class TestTwoPartyExchange:
    """Alice publishes a key; Bob encrypts; Alice decrypts — through
    serialization, as separate scheme instances."""

    @pytest.mark.parametrize("params", [P1, P2], ids=["P1", "P2"])
    def test_full_exchange(self, params):
        alice = seeded_scheme(params, seed=1)
        keys = alice.generate_keypair()
        published = serialize.serialize_public_key(keys.public)

        bob = seeded_scheme(params, seed=2)
        bob_view = serialize.deserialize_public_key(published)
        secret = b"the eagle lands at midnight"[: params.message_bytes]
        wire = serialize.serialize_ciphertext(bob.encrypt(bob_view, secret))

        received = serialize.deserialize_ciphertext(wire)
        assert alice.decrypt(keys.private, received, length=len(secret)) == secret


class TestCycleModelVsFunctionalStack:
    def test_ciphertexts_interchangeable(self):
        """A ciphertext produced by the cycle-model encryptor decrypts
        under the functional scheme and vice versa."""
        params = P1
        functional = seeded_scheme(params, seed=3)
        keys = functional.generate_keypair()

        rng = random.Random(4)
        message_bits = [rng.randrange(2) for _ in range(params.n)]

        machine = CortexM4()
        pool = BitPool(
            SimulatedTrng(Xorshift128(5), machine=machine), machine=machine
        )
        ct_model, _ = encrypt_cycles(
            machine, params, keys.public, message_bits, pool
        )
        noisy = functional.decrypt_polynomial(keys.private, ct_model)
        from repro.core.encoding import decode_bits

        assert decode_bits(noisy, params) == message_bits

        # And the reverse: functional ciphertext through the model.
        from repro.core.encoding import encode_bits

        ct_func = functional.encrypt_polynomial(
            keys.public, encode_bits(message_bits, params)
        )
        machine = CortexM4()
        decoded, _ = decrypt_cycles(machine, params, keys.private, ct_func)
        assert decoded == message_bits


class TestKeyReuseAcrossOperations:
    def test_one_key_many_cycle_measurements(self):
        params = P1
        machine = CortexM4()
        pool = BitPool(
            SimulatedTrng(Xorshift128(6), machine=machine), machine=machine
        )
        pair, _ = keygen_cycles(machine, params, pool)
        rng = random.Random(7)
        for trial in range(3):
            message = [rng.randrange(2) for _ in range(params.n)]
            m2 = CortexM4()
            pool2 = BitPool(
                SimulatedTrng(Xorshift128(10 + trial), machine=m2),
                machine=m2,
            )
            ct, enc = encrypt_cycles(m2, params, pair.public, message, pool2)
            m3 = CortexM4()
            decoded, dec = decrypt_cycles(m3, params, pair.private, ct)
            assert decoded == message
            assert enc.cycles > dec.cycles


class TestHomomorphicAdditivity:
    def test_ciphertext_addition_decrypts_to_xor_when_noise_allows(self):
        """LPR ciphertexts are additively homomorphic: adding two
        encryptions of m1, m2 yields an encryption of m1 XOR m2 (the
        encodings add mod q, and half+half wraps to ~0)."""
        params = P2  # larger q gives more noise headroom
        scheme = seeded_scheme(params, seed=8)
        keys = scheme.generate_keypair()
        m1 = bytes([0b10101010] * params.message_bytes)
        m2 = bytes([0b11001100] * params.message_bytes)
        ct1 = scheme.encrypt(keys.public, m1)
        ct2 = scheme.encrypt(keys.public, m2)
        q = params.q
        summed_c1 = tuple((a + b) % q for a, b in zip(ct1.c1_hat, ct2.c1_hat))
        summed_c2 = tuple((a + b) % q for a, b in zip(ct1.c2_hat, ct2.c2_hat))
        from repro.core.scheme import Ciphertext

        summed = Ciphertext(params, summed_c1, summed_c2)
        expected = bytes(a ^ b for a, b in zip(m1, m2))
        # Adding ciphertexts doubles the noise variance (~2.9 sigma of
        # headroom at P2), so a couple of bit flips per 512 are expected
        # — the homomorphism shows up as near-perfect XOR recovery.
        decrypted = scheme.decrypt(keys.private, summed)
        flips = sum(
            bin(a ^ b).count("1") for a, b in zip(decrypted, expected)
        )
        assert flips <= 10  # expectation ~2 of 512 bits


class TestPublicApi:
    def test_version_and_exports(self):
        import repro

        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports(self):
        import repro.analysis
        import repro.baselines
        import repro.cyclemodel
        import repro.machine
        import repro.ntt
        import repro.sampler
        import repro.trng

        for module in (
            repro.ntt,
            repro.sampler,
            repro.trng,
            repro.machine,
            repro.cyclemodel,
            repro.baselines,
            repro.analysis,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)
