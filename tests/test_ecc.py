"""Binary elliptic curves: group laws and the Montgomery ladder."""

import random

import pytest

from repro.baselines.ecc import BinaryCurve, curve_k233, curve_tiny
from repro.baselines.gf2m import FIELD_5


@pytest.fixture(scope="module")
def tiny():
    return curve_tiny()


@pytest.fixture(scope="module")
def tiny_points(tiny):
    return tiny.enumerate_points()


@pytest.fixture(scope="module")
def k233():
    return curve_k233()


class TestTinyCurveExhaustive:
    def test_point_count_hasse_bound(self, tiny_points):
        # |#E - 33| <= 2*sqrt(32) ~ 11.3
        assert abs(len(tiny_points) - 33) <= 11

    def test_closure_and_commutativity(self, tiny, tiny_points):
        for p in tiny_points:
            for q in tiny_points:
                r = tiny.add(p, q)
                assert tiny.is_on_curve(r)
                assert r == tiny.add(q, p)

    def test_identity_and_inverse(self, tiny, tiny_points):
        for p in tiny_points:
            assert tiny.add(p, None) == p
            assert tiny.add(p, tiny.negate(p)) is None

    def test_associativity_sampled(self, tiny, tiny_points):
        rng = random.Random(0)
        for _ in range(300):
            p, q, r = (rng.choice(tiny_points) for _ in range(3))
            assert tiny.add(tiny.add(p, q), r) == tiny.add(p, tiny.add(q, r))

    def test_doubling_consistent_with_addition(self, tiny, tiny_points):
        for p in tiny_points:
            assert tiny.double(p) == tiny.add(p, p) or (
                p is not None
                and p[0] == 0
                and tiny.double(p) is None
            )

    def test_scalar_multiples_stay_on_curve(self, tiny, tiny_points):
        for p in tiny_points[1:6]:
            for k in range(40):
                assert tiny.is_on_curve(tiny.scalar_multiply(k, p))

    def test_ladder_matches_double_and_add(self, tiny, tiny_points):
        for p in tiny_points:
            if p is None:
                continue
            for k in range(34):
                ref = tiny.scalar_multiply(k, p)
                lx = tiny.montgomery_ladder_x(k, p[0])
                if ref is None:
                    assert lx is None
                else:
                    assert lx == ref[0]

    def test_negative_scalar(self, tiny, tiny_points):
        p = tiny_points[1]
        assert tiny.scalar_multiply(-3, p) == tiny.negate(
            tiny.scalar_multiply(3, p)
        )


class TestPointConstruction:
    def test_point_from_x_on_curve(self, tiny):
        for x in FIELD_5.elements():
            p = tiny.point_from_x(x)
            if p is not None:
                assert tiny.is_on_curve(p)

    def test_find_point(self, k233):
        p = k233.find_point()
        assert k233.is_on_curve(p)

    def test_solve_quadratic(self, k233):
        f = k233.fld
        for c in (5, 12345, 999999):
            z = k233.solve_quadratic(c)
            if z is not None:
                assert f.add(f.square(z), z) == c


class TestK233:
    def test_curve_equation_parameters(self, k233):
        assert k233.a == 0 and k233.b == 1
        assert k233.fld.m == 233

    def test_ladder_matches_double_and_add(self, k233):
        rng = random.Random(1)
        g = k233.find_point()
        for bits in (10, 64, 233):
            k = rng.getrandbits(bits) | 1
            ref = k233.scalar_multiply(k, g)
            lx = k233.montgomery_ladder_x(k, g[0])
            assert ref is not None and lx == ref[0]

    def test_distributivity(self, k233):
        rng = random.Random(2)
        g = k233.find_point()
        a, b = rng.getrandbits(48), rng.getrandbits(48)
        assert k233.add(
            k233.scalar_multiply(a, g), k233.scalar_multiply(b, g)
        ) == k233.scalar_multiply(a + b, g)

    def test_ladder_edge_cases(self, k233):
        g = k233.find_point()
        assert k233.montgomery_ladder_x(0, g[0]) is None
        assert k233.montgomery_ladder_x(1, g[0]) == g[0]
        two_g = k233.double(g)
        assert k233.montgomery_ladder_x(2, g[0]) == two_g[0]

    def test_op_counter_tracks(self, k233):
        k233.counter.counts = {k: 0 for k in k233.counter.counts}
        k233.montgomery_ladder_x(0xFFFF, k233.find_point()[0])
        counts = k233.counter.counts
        # 15 ladder iterations at 6 muls + 5 squares each, plus setup
        # and the final inversion-based normalisation.
        assert counts["mul"] >= 15 * 6
        assert counts["inverse"] == 1


class TestValidation:
    def test_singular_curve_rejected(self):
        with pytest.raises(ValueError):
            BinaryCurve("bad", FIELD_5, a=1, b=0)

    def test_negative_ladder_scalar(self, tiny):
        with pytest.raises(ValueError):
            tiny.montgomery_ladder_x(-1, 1)
