"""xorshift128 PRNG."""

import pytest

from repro.trng.xorshift import Xorshift128


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = Xorshift128(42)
        b = Xorshift128(42)
        assert [a.next_u32() for _ in range(100)] == [
            b.next_u32() for _ in range(100)
        ]

    def test_different_seeds_differ(self):
        a = [Xorshift128(1).next_u32() for _ in range(8)]
        b = [Xorshift128(2).next_u32() for _ in range(8)]
        assert a != b


class TestOutputProperties:
    def test_outputs_are_32bit(self):
        g = Xorshift128(7)
        for _ in range(1000):
            assert 0 <= g.next_u32() < (1 << 32)

    def test_no_short_cycle(self):
        g = Xorshift128(3)
        outputs = [g.next_u32() for _ in range(5000)]
        assert len(set(outputs)) > 4990  # collisions astronomically rare

    def test_bit_balance(self):
        g = Xorshift128(11)
        ones = sum(bin(g.next_u32()).count("1") for _ in range(2000))
        total = 2000 * 32
        assert abs(ones / total - 0.5) < 0.01

    def test_words_iterator(self):
        g = Xorshift128(5)
        h = Xorshift128(5)
        assert list(g.words(10)) == [h.next_u32() for _ in range(10)]

    def test_bytes(self):
        g = Xorshift128(5)
        data = g.bytes(10)
        assert len(data) == 10
        h = Xorshift128(5)
        expected = h.next_u32().to_bytes(4, "little") + h.next_u32().to_bytes(
            4, "little"
        ) + h.next_u32().to_bytes(4, "little")
        assert data == expected[:10]

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            Xorshift128(-1)

    def test_zero_seed_works(self):
        g = Xorshift128(0)
        assert g.next_u32() != g.next_u32()
