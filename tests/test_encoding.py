"""Message encoding/decoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import (
    bits_from_bytes,
    bytes_from_bits,
    decode_bits,
    decode_bytes,
    encode_bits,
    encode_bytes,
)
from repro.core.params import P1
from tests.conftest import SMALL


class TestBitByteConversion:
    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=100)
    def test_roundtrip(self, data):
        assert bytes_from_bits(bits_from_bytes(data)) == data

    def test_lsb_first(self):
        assert bits_from_bytes(b"\x03") == [1, 1, 0, 0, 0, 0, 0, 0]

    def test_partial_byte_rejected(self):
        with pytest.raises(ValueError):
            bytes_from_bits([1, 0, 1])

    def test_non_bit_rejected(self):
        with pytest.raises(ValueError):
            bytes_from_bits([0, 1, 2, 0, 0, 0, 0, 0])


class TestThresholdCoding:
    def test_encode_values(self):
        poly = encode_bits([1, 0, 1], SMALL)
        assert poly[:3] == [SMALL.half_q, 0, SMALL.half_q]
        assert poly[3:] == [0] * (SMALL.n - 3)

    @given(st.lists(st.integers(0, 1), min_size=0, max_size=SMALL.n))
    @settings(max_examples=100)
    def test_noiseless_roundtrip(self, bits):
        poly = encode_bits(bits, SMALL)
        decoded = decode_bits(poly, SMALL)
        assert decoded[: len(bits)] == bits
        assert all(b == 0 for b in decoded[len(bits):])

    @given(
        st.lists(st.integers(0, 1), min_size=SMALL.n, max_size=SMALL.n),
        st.lists(
            st.integers(-(SMALL.q // 4) + 1, SMALL.q // 4 - 1),
            min_size=SMALL.n,
            max_size=SMALL.n,
        ),
    )
    @settings(max_examples=100)
    def test_decoding_tolerates_noise_below_q4(self, bits, noise):
        q = SMALL.q
        poly = encode_bits(bits, SMALL)
        noisy = [(c + e) % q for c, e in zip(poly, noise)]
        assert decode_bits(noisy, SMALL) == bits

    def test_noise_at_threshold_flips(self):
        q = SMALL.q
        poly = encode_bits([0], SMALL)
        poly[0] = q // 4 + 1  # just past the threshold
        assert decode_bits(poly, SMALL)[0] == 1

    def test_oversized_message_rejected(self):
        with pytest.raises(ValueError):
            encode_bits([0] * (SMALL.n + 1), SMALL)

    def test_non_bit_rejected(self):
        with pytest.raises(ValueError):
            encode_bits([2], SMALL)

    def test_decode_length_check(self):
        with pytest.raises(ValueError):
            decode_bits([0] * 4, SMALL)


class TestByteApi:
    @given(st.binary(min_size=0, max_size=P1.message_bytes))
    @settings(max_examples=50)
    def test_byte_roundtrip(self, message):
        poly = encode_bytes(message, P1)
        assert decode_bytes(poly, P1, length=len(message)) == message

    def test_capacity_enforced(self):
        with pytest.raises(ValueError):
            encode_bytes(b"x" * (P1.message_bytes + 1), P1)

    def test_decode_length_validation(self):
        poly = encode_bytes(b"hi", P1)
        with pytest.raises(ValueError):
            decode_bytes(poly, P1, length=P1.message_bytes + 1)

    def test_negative_length_rejected(self):
        # Regression: length=-5 used to silently return a truncated
        # message via Python's negative slicing.
        poly = encode_bytes(b"hello world", P1)
        with pytest.raises(ValueError):
            decode_bytes(poly, P1, length=-5)
        with pytest.raises(ValueError):
            decode_bytes(poly, P1, length=-1)
