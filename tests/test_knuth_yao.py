"""Alg. 1 Knuth-Yao sampler: exact distribution and walk semantics."""

from collections import Counter
from fractions import Fraction

import pytest

from repro.core.params import P1, P2
from repro.sampler.ddg import exact_output_distribution
from repro.sampler.distribution import DiscreteGaussian
from repro.sampler.knuth_yao import KnuthYaoSampler
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitsource import PrngBitSource, QueueBitSource
from repro.trng.xorshift import Xorshift128

TOY_Q = 97


@pytest.fixture(scope="module")
def toy_pmat():
    # precision 11 keeps exhaustive enumeration to 2^12 streams.
    return ProbabilityMatrix.from_table(
        DiscreteGaussian(sigma=1.2).half_table(precision=11, tail=6)
    )


class TestExhaustiveDistribution:
    """Enumerate every bit stream: the empirical distribution of Alg. 1
    must match the exact DDG output distribution *exactly*."""

    def test_full_enumeration(self, toy_pmat):
        precision = toy_pmat.columns
        weights = Counter()
        # A walk plus sign never consumes more than precision + 1 bits.
        width = precision + 1
        for stream in range(1 << width):
            bits = QueueBitSource.from_integer(stream, width)
            sampler = KnuthYaoSampler(toy_pmat, TOY_Q, bits)
            value = sampler.sample()
            # Weight each outcome by the probability of the *consumed*
            # prefix: group streams sharing a prefix.
            weights[value] += 1
        total = 1 << width
        empirical = {
            v: Fraction(c, total) for v, c in weights.items()
        }
        exact = exact_output_distribution(toy_pmat, TOY_Q)
        for value, prob in exact.items():
            assert empirical.get(value, Fraction(0)) == prob, value
        assert sum(empirical.values()) == 1


class TestWalkSemantics:
    def test_deterministic_given_stream(self, toy_pmat):
        bits1 = QueueBitSource.from_integer(0b1011011010, 12)
        bits2 = QueueBitSource.from_integer(0b1011011010, 12)
        s1 = KnuthYaoSampler(toy_pmat, TOY_Q, bits1)
        s2 = KnuthYaoSampler(toy_pmat, TOY_Q, bits2)
        assert s1.sample() == s2.sample()

    def test_sign_bit_consumed_after_magnitude(self, toy_pmat):
        # Flip exactly the post-termination sign bit: the two streams
        # must return opposite values (mod q).
        for seed in range(40):
            probe_bits = PrngBitSource(Xorshift128(seed))
            probe = KnuthYaoSampler(toy_pmat, TOY_Q, probe_bits)
            probe.sample_magnitude()
            walk_bits = probe_bits.bits_consumed  # bits before the sign
            reference = PrngBitSource(Xorshift128(seed))
            prefix = [reference.bit() for _ in range(walk_bits)]
            pos = QueueBitSource(prefix + [0])
            neg = QueueBitSource(prefix + [1])
            s_pos = KnuthYaoSampler(toy_pmat, TOY_Q, pos).sample()
            s_neg = KnuthYaoSampler(toy_pmat, TOY_Q, neg).sample()
            assert (s_pos + s_neg) % TOY_Q == 0

    def test_sample_magnitude_resume(self, toy_pmat):
        # Resuming at a later column with explicit distance is the hook
        # the LUT sampler uses; resumed walks must stay within range.
        bits = PrngBitSource(Xorshift128(3))
        sampler = KnuthYaoSampler(toy_pmat, TOY_Q, bits)
        for _ in range(50):
            row = sampler.sample_magnitude(start_column=3, start_distance=2)
            assert row is None or 0 <= row < toy_pmat.rows


class TestRangeAndMoments:
    @pytest.mark.parametrize("params", [P1, P2], ids=["P1", "P2"])
    def test_samples_in_range(self, params):
        sampler = KnuthYaoSampler.for_params(
            params, PrngBitSource(Xorshift128(5))
        )
        tail = sampler.pmat.table.tail
        for _ in range(2000):
            value = sampler.sample()
            assert 0 <= value < params.q
            centered = value if value <= params.q // 2 else value - params.q
            assert abs(centered) <= tail

    def test_sample_centered_range(self):
        sampler = KnuthYaoSampler.for_params(P1, PrngBitSource(Xorshift128(6)))
        values = [sampler.sample_centered() for _ in range(2000)]
        assert any(v < 0 for v in values) and any(v > 0 for v in values)

    def test_variance_close_to_target(self):
        sampler = KnuthYaoSampler.for_params(P1, PrngBitSource(Xorshift128(7)))
        values = [sampler.sample_centered() for _ in range(20000)]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert var == pytest.approx(P1.sigma**2, rel=0.05)

    def test_sample_polynomial_length(self):
        sampler = KnuthYaoSampler.for_params(P1, PrngBitSource(Xorshift128(8)))
        assert len(sampler.sample_polynomial(P1.n)) == P1.n


class TestValidation:
    def test_q_too_small_rejected(self, toy_pmat):
        with pytest.raises(ValueError):
            KnuthYaoSampler(toy_pmat, 12, QueueBitSource([]))
