"""Compiled-tier specifics: availability, fallback, sampler identity.

``tests/test_backend_equivalence.py`` already sweeps the compiled
backend through every cross-backend op-identity check (it enumerates
``available_backends()``).  This module pins what is unique to the
compiled tier:

* availability probing and the ``REPRO_NO_ACCEL`` kill switch, with
  human-readable reasons in ``availability_report()`` /
  ``skipped_backends_report()``;
* warning-only fallback when ``REPRO_BACKEND=compiled`` cannot run;
* transparent per-parameter-set fallback for moduli outside the
  kernel's ``q < 2^30`` range;
* the C Knuth-Yao sampler: outputs, counters, and post-call PRNG /
  bit-register state bit-identical to the pure-Python sampler, in both
  sequential and phased block order, and Python fallback for bit
  sources the C mirror cannot reproduce;
* the fused scalar-encrypt path and multi-threaded batched transforms.
"""

import random

import pytest

from repro.backend import (
    BackendUnavailable,
    availability_report,
    available_backends,
    get_backend,
    skipped_backends_report,
)
from repro.core.params import P1, P2, custom_parameter_set
from repro.core.scheme import RlweEncryptionScheme
from repro.sampler.lut_sampler import LutKnuthYaoSampler
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitsource import PrngBitSource, QueueBitSource
from repro.trng.xorshift import Xorshift128

pytestmark = pytest.mark.skipif(
    not available_backends().get("compiled", False),
    reason="compiled backend unavailable here",
)

#: NTT-friendly (q = 1 mod 2n for n = 64) prime above the kernel's
#: 2^30 modulus ceiling — exercises the per-parameter-set fallback.
BIG_Q = custom_parameter_set(64, 1073750017, 11.31, name="BIGQ")


def random_poly(params, rng):
    return [rng.randrange(params.q) for _ in range(params.n)]


class TestAvailability:
    def test_reports_shape(self):
        report = availability_report()
        assert report["compiled"]["available"] is True
        assert report["compiled"]["reason"] is None
        assert "compiled" not in skipped_backends_report()

    def test_no_accel_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_ACCEL", "1")
        assert available_backends()["compiled"] is False
        report = availability_report()
        assert report["compiled"]["available"] is False
        assert "REPRO_NO_ACCEL" in report["compiled"]["reason"]
        assert "REPRO_NO_ACCEL" in skipped_backends_report()["compiled"]
        with pytest.raises(BackendUnavailable, match="REPRO_NO_ACCEL"):
            get_backend("compiled")

    def test_env_default_falls_back_with_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_ACCEL", "1")
        monkeypatch.setenv("REPRO_BACKEND", "compiled")
        with pytest.warns(RuntimeWarning, match="falling back"):
            backend = get_backend(None)
        assert backend.name == "python-reference"

    def test_kernel_unavailable_reason_mentions_install_hint(
        self, monkeypatch
    ):
        from repro.ntt.kernel_c import accel_unavailable_reason

        assert accel_unavailable_reason() is None
        monkeypatch.setenv("REPRO_NO_ACCEL", "1")
        assert "REPRO_NO_ACCEL" in accel_unavailable_reason()


class TestUnsupportedModulusFallback:
    def test_big_q_not_supported_but_identical(self):
        compiled = get_backend("compiled")
        reference = get_backend("python-reference")
        assert not compiled._kernel.supports(BIG_Q)
        rng = random.Random(0xF00)
        for _ in range(3):
            poly = random_poly(BIG_Q, rng)
            assert compiled.ntt_forward(poly, BIG_Q) == (
                reference.ntt_forward(poly, BIG_Q)
            )
            assert compiled.ntt_inverse(poly, BIG_Q) == (
                reference.ntt_inverse(poly, BIG_Q)
            )
            other = random_poly(BIG_Q, rng)
            for op in ("pointwise_mul", "pointwise_add", "pointwise_sub"):
                assert getattr(compiled, op)(poly, other, BIG_Q) == (
                    getattr(reference, op)(poly, other, BIG_Q)
                )

    def test_big_q_batch_ops_match_numpy(self):
        compiled = get_backend("compiled")
        numpy_backend = get_backend("numpy")
        rng = random.Random(0xF01)
        matrix = [random_poly(BIG_Q, rng) for _ in range(4)]
        np = compiled.np
        assert np.array_equal(
            compiled.ntt_forward_batch(matrix, BIG_Q),
            numpy_backend.ntt_forward_batch(matrix, BIG_Q),
        )
        assert np.array_equal(
            compiled.ntt_inverse_batch(matrix, BIG_Q),
            numpy_backend.ntt_inverse_batch(matrix, BIG_Q),
        )


@pytest.mark.parametrize("params", [P1, P2], ids=["P1", "P2"])
class TestSamplerIdentity:
    def _pair(self, params, use_lut2=True, seed=77):
        pmat = ProbabilityMatrix.for_params(params)
        compiled = get_backend("compiled")
        accel = compiled.make_sampler(
            pmat, params.q, PrngBitSource(Xorshift128(seed)),
            use_lut2=use_lut2,
        )
        pure = LutKnuthYaoSampler(
            pmat, params.q, PrngBitSource(Xorshift128(seed)),
            use_lut2=use_lut2,
        )
        return accel, pure

    @staticmethod
    def _state(sampler):
        bits = sampler.bits
        prng = bits._prng
        return (
            prng._x, prng._y, prng._z, prng._w,
            bits._register, bits._available,
            bits.bits_consumed, bits.words_fetched,
            sampler.lut1_hits, sampler.lut2_hits, sampler.scan_fallbacks,
        )

    def test_scalar_and_polynomial_identity(self, params):
        accel, pure = self._pair(params)
        for _ in range(64):
            assert accel.sample() == pure.sample()
        assert self._state(accel) == self._state(pure)
        assert accel.sample_polynomial(params.n) == (
            pure.sample_polynomial(params.n)
        )
        assert self._state(accel) == self._state(pure)

    def test_fused_polynomials_identity(self, params):
        accel, pure = self._pair(params, seed=91)
        fused = accel.sample_polynomials(params.n, 3)
        sequential = [pure.sample_polynomial(params.n) for _ in range(3)]
        assert fused == sequential
        assert self._state(accel) == self._state(pure)

    def test_block_identity(self, params):
        accel, pure = self._pair(params, seed=13)
        got = accel.sample_block(3 * params.n)
        expected = pure.sample_block(3 * params.n)
        assert list(got) == list(expected)
        assert self._state(accel) == self._state(pure)

    def test_no_lut2_identity(self, params):
        accel, pure = self._pair(params, use_lut2=False, seed=29)
        assert accel.sample_polynomial(params.n) == (
            pure.sample_polynomial(params.n)
        )
        assert accel.lut2_hits == 0
        assert self._state(accel) == self._state(pure)

    def test_interleaved_python_and_c_calls(self, params):
        # State syncs both ways, so alternating accelerated and
        # inherited draws must track the pure sampler exactly.
        accel, pure = self._pair(params, seed=31)
        for round_no in range(4):
            if round_no % 2:
                assert accel.sample() == pure.sample()
            else:
                assert accel.sample_polynomial(16) == (
                    pure.sample_polynomial(16)
                )
            # Inherited scalar path on the accel instance.
            assert LutKnuthYaoSampler.sample(accel) == pure.sample()
        assert self._state(accel) == self._state(pure)

    def test_queue_source_falls_back_to_python(self, params):
        # A non-PRNG source cannot be mirrored in C; the accel sampler
        # must transparently use the inherited Python paths.
        pmat = ProbabilityMatrix.for_params(params)
        stream = [1, 0] * 4096
        compiled = get_backend("compiled")
        accel = compiled.make_sampler(
            pmat, params.q, QueueBitSource(stream)
        )
        pure = LutKnuthYaoSampler(pmat, params.q, QueueBitSource(stream))
        assert not accel._eligible()
        for _ in range(8):
            assert accel.sample() == pure.sample()
        assert accel.bits.bits_consumed == pure.bits.bits_consumed


class TestFusedEncrypt:
    def test_fused_matches_generic_pipeline(self):
        compiled = get_backend("compiled")
        reference = get_backend("python-reference")
        for params in (P1, P2):
            msg = bytes(range(params.message_bytes))
            ciphertexts = {}
            for backend in (reference, compiled):
                scheme = RlweEncryptionScheme(
                    params,
                    bits=PrngBitSource(Xorshift128(2015)),
                    backend=backend,
                )
                keypair = scheme.generate_keypair()
                ct = scheme.encrypt(keypair.public, msg)
                assert scheme.decrypt(
                    keypair.private, ct, length=len(msg)
                ) == msg
                ciphertexts[backend.name] = (ct.c1_hat, ct.c2_hat)
            assert ciphertexts["compiled"] == (
                ciphertexts["python-reference"]
            )

    def test_fused_core_direct(self):
        compiled = get_backend("compiled")
        reference = get_backend("python-reference")
        rng = random.Random(0xE14)
        for params in (P1, P2):
            a_hat = random_poly(params, rng)
            p_hat = random_poly(params, rng)
            e_polys = [random_poly(params, rng) for _ in range(3)]
            msg = [rng.randrange(2) * params.half_q
                   for _ in range(params.n)]
            c1, c2 = compiled.encrypt_polynomial_core(
                a_hat, p_hat, e_polys, msg, params
            )
            e1, e2, e3 = e_polys
            e3m = reference.pointwise_add(e3, msg, params)
            e1_hat = reference.ntt_forward(e1, params)
            expected_c1 = reference.pointwise_add(
                reference.pointwise_mul(a_hat, e1_hat, params),
                reference.ntt_forward(e2, params),
                params,
            )
            expected_c2 = reference.pointwise_add(
                reference.pointwise_mul(p_hat, e1_hat, params),
                reference.ntt_forward(e3m, params),
                params,
            )
            assert c1 == expected_c1
            assert c2 == expected_c2

    def test_fused_core_unsupported_modulus_returns_none(self):
        compiled = get_backend("compiled")
        rng = random.Random(5)
        e_polys = [random_poly(BIG_Q, rng) for _ in range(3)]
        assert compiled.encrypt_polynomial_core(
            random_poly(BIG_Q, rng), random_poly(BIG_Q, rng),
            e_polys, [0] * BIG_Q.n, BIG_Q,
        ) is None


class TestThreads:
    def test_multithreaded_batch_identical(self):
        from repro.backend.compiled_backend import CompiledBackend

        single = CompiledBackend(threads=1)
        multi = CompiledBackend(threads=4)
        assert multi.threads == 4
        np = single.np
        rng = random.Random(0x7EAD)
        for params in (P1, P2):
            matrix = [random_poly(params, rng) for _ in range(33)]
            assert np.array_equal(
                single.ntt_forward_batch(matrix, params),
                multi.ntt_forward_batch(matrix, params),
            )
            assert np.array_equal(
                single.ntt_inverse_batch(matrix, params),
                multi.ntt_inverse_batch(matrix, params),
            )

    def test_thread_override_env(self, monkeypatch):
        from repro.ntt.kernel_c import THREADS_ENV, default_threads

        monkeypatch.setenv(THREADS_ENV, "3")
        assert default_threads() == 3


class TestProfiledTransform:
    def test_profiled_matches_plain_and_reports_stages(self):
        compiled = get_backend("compiled")
        np = compiled.np
        rng = random.Random(0x57A6)
        for params in (P1, P2):
            matrix = [random_poly(params, rng) for _ in range(4)]
            plain = compiled.ntt_forward_batch(matrix, params)
            profiled, stage_seconds = compiled.ntt_batch_profiled(
                matrix, params, inverse=False
            )
            assert np.array_equal(plain, profiled)
            assert "bitrev" in stage_seconds
            assert "reduce" in stage_seconds
            assert "scale" in stage_seconds
            stages = params.n.bit_length() - 1
            stage_keys = [k for k in stage_seconds if k.startswith("stage_m")]
            assert len(stage_keys) == stages
            assert all(v >= 0.0 for v in stage_seconds.values())
