"""The KEM layer."""

import pytest

from repro import P1, P2, seeded_scheme
from repro.core.kem import (
    SECRET_BYTES,
    Encapsulation,
    EncapsulationError,
    RlweKem,
    SharedSecret,
    exchange_session_key,
)
from repro.core.params import custom_parameter_set
from repro.core.scheme import RlweEncryptionScheme
from repro.trng.bitsource import PrngBitSource
from repro.trng.xorshift import Xorshift128


@pytest.fixture(params=[P1, P2], ids=["P1", "P2"])
def kem_setup(request):
    scheme = seeded_scheme(request.param, seed=9001)
    kem = RlweKem(scheme)
    keys = scheme.generate_keypair()
    return kem, keys


class TestEncapsulation:
    def test_shared_secret_agreement(self, kem_setup):
        kem, keys = kem_setup
        encapsulation, sender = kem.encapsulate(keys.public)
        receiver = kem.decapsulate(keys.private, keys.public, encapsulation)
        assert sender.key == receiver.key
        assert len(sender.key) == 32

    def test_fresh_secret_per_encapsulation(self, kem_setup):
        kem, keys = kem_setup
        _, first = kem.encapsulate(keys.public)
        _, second = kem.encapsulate(keys.public)
        assert first.key != second.key

    def test_tag_length(self, kem_setup):
        kem, keys = kem_setup
        encapsulation, _ = kem.encapsulate(keys.public)
        assert len(encapsulation.tag) == 16


class TestTamperDetection:
    def test_flipped_tag_rejected(self, kem_setup):
        kem, keys = kem_setup
        encapsulation, _ = kem.encapsulate(keys.public)
        bad_tag = bytes([encapsulation.tag[0] ^ 1]) + encapsulation.tag[1:]
        tampered = Encapsulation(encapsulation.ciphertext, bad_tag)
        with pytest.raises(EncapsulationError):
            kem.decapsulate(keys.private, keys.public, tampered)

    def test_corrupted_ciphertext_rejected(self, kem_setup):
        kem, keys = kem_setup
        encapsulation, _ = kem.encapsulate(keys.public)
        ct = encapsulation.ciphertext
        q = ct.params.q
        corrupted_c1 = (ct.c1_hat[0] + q // 2,) + ct.c1_hat[1:]
        from repro.core.scheme import Ciphertext

        tampered = Encapsulation(
            Ciphertext(ct.params, tuple(c % q for c in corrupted_c1), ct.c2_hat),
            encapsulation.tag,
        )
        with pytest.raises(EncapsulationError):
            kem.decapsulate(keys.private, keys.public, tampered)

    def test_wrong_private_key_rejected(self, kem_setup):
        kem, keys = kem_setup
        other = kem.scheme.generate_keypair()
        encapsulation, _ = kem.encapsulate(keys.public)
        with pytest.raises(EncapsulationError):
            kem.decapsulate(other.private, keys.public, encapsulation)


class TestKeyBinding:
    def test_secret_bound_to_recipient_key(self, kem_setup):
        """The KDF binds the session key to p_hat: the same raw secret
        under a different public key derives a different session key."""
        kem, keys = kem_setup
        from repro.core.kem import _derive

        key_a, _ = _derive(b"\x00" * SECRET_BYTES, keys.public)
        other = kem.scheme.generate_keypair()
        key_b, _ = _derive(b"\x00" * SECRET_BYTES, other.public)
        assert key_a != key_b


class TestExchangeHelper:
    def test_exchange_succeeds(self, kem_setup):
        kem, keys = kem_setup
        secret = exchange_session_key(kem, keys.private, keys.public)
        assert secret is not None
        assert len(secret.key) == 32


class TestValidation:
    def test_small_ring_rejected(self):
        tiny = custom_parameter_set(64, 7681, 11.31)
        scheme = RlweEncryptionScheme(
            tiny, bits=PrngBitSource(Xorshift128(1))
        )
        with pytest.raises(ValueError):
            RlweKem(scheme)  # 64 bits < 32-byte secret

    def test_shared_secret_length_check(self):
        with pytest.raises(ValueError):
            SharedSecret(b"short")
