"""Literature constants: internal consistency with the paper's claims."""

from repro.analysis import literature


class TestTableConstants:
    def test_this_work_table1_complete(self):
        ops = {
            "NTT transform",
            "Parallel NTT transform",
            "Inverse NTT transform",
            "Knuth-Yao sampling",
            "NTT multiplication",
        }
        for op in ops:
            for params in ("P1", "P2"):
                assert (op, params) in literature.THIS_WORK_TABLE1

    def test_table2_shape(self):
        for key, value in literature.THIS_WORK_TABLE2.items():
            assert len(value) == 3  # cycles, flash, ram

    def test_filters(self):
        ntt_rows = literature.table3_rows("NTT transform")
        assert all(r.operation == "NTT transform" for r in ntt_rows)
        assert len(literature.table3_rows()) == len(
            literature.TABLE3_LITERATURE
        )
        enc_rows = literature.table4_rows("Encryption")
        assert all(r.operation == "Encryption" for r in enc_rows)


class TestPaperClaimsInternallyConsistent:
    """Verify the paper's own headline arithmetic from its tables."""

    def test_factor_7_25_encryption(self):
        arm7_enc = next(
            r.cycles
            for r in literature.TABLE4_LITERATURE
            if r.platform == "ARM7TDMI" and r.operation == "Encryption"
        )
        ours = literature.THIS_WORK_TABLE4[("Encryption", "P1")]
        assert 7.2 < arm7_enc / ours < 7.3  # the paper's "7.25"

    def test_factor_5_22_decryption(self):
        arm7_dec = next(
            r.cycles
            for r in literature.TABLE4_LITERATURE
            if r.platform == "ARM7TDMI" and r.operation == "Decryption"
        )
        ours = literature.THIS_WORK_TABLE4[("Decryption", "P1")]
        assert 5.2 < arm7_dec / ours < 5.3

    def test_sampler_factor_7_6(self):
        fastest = min(
            r.cycles
            for r in literature.TABLE3_LITERATURE
            if r.operation == "Gaussian sampling"
        )
        ours = literature.THIS_WORK_TABLE3[("Gaussian sampling", "P1")]
        assert 7.5 < fastest / ours < 7.8  # the paper's "7.6x"

    def test_ntt_vs_oder(self):
        oder = next(
            r.cycles
            for r in literature.TABLE3_LITERATURE
            if r.source == "[10]" and r.operation == "NTT transform"
        )
        ours_p2 = literature.THIS_WORK_TABLE3[("NTT transform", "P2")]
        # Paper: "27.5% less cycles than [10]" and "72% faster".
        assert (oder - ours_p2) / oder > 0.27

    def test_ecies_order_of_magnitude(self):
        enc = literature.THIS_WORK_TABLE4[("Encryption", "P1")]
        assert literature.ECIES_ENCRYPT_ESTIMATE / enc > 10
