"""High-precision discrete Gaussian distribution tests."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import P1, P2
from repro.sampler.distribution import DiscreteGaussian, HalfGaussianTable


class TestConstruction:
    def test_sigma_or_s_required(self):
        with pytest.raises(ValueError):
            DiscreteGaussian()
        with pytest.raises(ValueError):
            DiscreteGaussian(sigma=1.0, s=1.0)

    def test_s_conversion(self):
        g = DiscreteGaussian(s=11.31)
        assert g.sigma == pytest.approx(11.31 / math.sqrt(2 * math.pi))
        assert g.s == pytest.approx(11.31)

    def test_positive_sigma_required(self):
        with pytest.raises(ValueError):
            DiscreteGaussian(sigma=-1.0)


class TestDensity:
    def test_rho_at_zero(self):
        assert DiscreteGaussian(sigma=3.0).rho(0) == 1.0

    def test_rho_symmetry_and_decay(self):
        g = DiscreteGaussian(sigma=3.0)
        assert g.rho(5) == g.rho(-5)
        assert g.rho(5) > g.rho(6)

    def test_pmf_normalised(self):
        g = DiscreteGaussian(sigma=4.5)
        total = sum(g.pmf(x) for x in range(-80, 81))
        assert total == pytest.approx(1.0, abs=1e-12)

    def test_pmf_matches_continuous_shape(self):
        g = DiscreteGaussian(sigma=4.5)
        # For sigma >> 1 the discrete pmf is close to the density.
        expected = math.exp(-1 / (2 * 4.5**2)) * g.pmf(0)
        assert g.pmf(1) == pytest.approx(expected, rel=1e-12)


class TestBounds:
    def test_paper_tail_regime(self):
        g = DiscreteGaussian(s=11.31)
        z = g.tail_bound(2.0**-92)
        # The analytic bound lands near 11.2 sigma ~ 50.
        assert 45 <= z <= 55

    def test_tail_bound_monotone_in_epsilon(self):
        g = DiscreteGaussian(s=11.31)
        assert g.tail_bound(2.0**-100) >= g.tail_bound(2.0**-50)

    def test_tail_bound_validation(self):
        with pytest.raises(ValueError):
            DiscreteGaussian(sigma=3.0).tail_bound(0.0)

    def test_precision_bound(self):
        # 55 rows at 2^-90 needs ceil(log2(55/2^-90)) = 96 bits.
        assert DiscreteGaussian.precision_bound(54, 2.0**-90) == 96

    def test_precision_bound_validation(self):
        with pytest.raises(ValueError):
            DiscreteGaussian.precision_bound(10, 1.5)


class TestHalfTable:
    @pytest.mark.parametrize("params", [P1, P2], ids=["P1", "P2"])
    def test_sums_to_unity(self, params):
        g = DiscreteGaussian(sigma=params.sigma)
        table = g.half_table(precision=109, tail=54)
        assert sum(table.probabilities) == 1 << 109

    def test_monotone_decreasing(self):
        table = DiscreteGaussian(s=11.31).half_table(64, 30)
        # t_0 is halved relative to the doubled nonzero entries, so
        # monotonicity starts at x = 1.
        probs = table.probabilities
        assert all(probs[x] >= probs[x + 1] for x in range(1, 30))

    def test_zero_entry_is_half_of_doubled_ratio(self):
        g = DiscreteGaussian(s=11.31)
        table = g.half_table(80, 40)
        # t_1 / t_0 should be ~ 2 * rho(1)/rho(0).
        ratio = table.probabilities[1] / table.probabilities[0]
        assert ratio == pytest.approx(2 * g.rho(1), rel=1e-6)

    def test_signed_probability(self):
        table = DiscreteGaussian(s=11.31).half_table(40, 20)
        assert table.signed_probability(0) == table.probability(0)
        assert table.signed_probability(3) == table.probability(3) / 2
        assert table.signed_probability(-3) == table.probability(3) / 2
        assert table.signed_probability(25) == Fraction(0)

    def test_statistical_distance_small(self):
        # The true distance is ~2^-90 by construction; the measurement
        # here compares against a float-precision reference pmf, so the
        # observable floor is ~1e-16.
        table = DiscreteGaussian(s=11.31).half_table(109, 54)
        assert table.statistical_distance() < 1e-14

    def test_validation(self):
        g = DiscreteGaussian(sigma=3.0)
        with pytest.raises(ValueError):
            g.half_table(0, 10)
        with pytest.raises(ValueError):
            g.half_table(10, 0)

    @given(st.integers(min_value=8, max_value=48))
    @settings(max_examples=10, deadline=None)
    def test_any_precision_sums_to_unity(self, precision):
        table = DiscreteGaussian(sigma=2.0).half_table(precision, 20)
        assert sum(table.probabilities) == 1 << precision


class TestMoments:
    def test_variance_close_to_sigma_squared(self):
        g = DiscreteGaussian(sigma=4.5)
        assert g.moments()["variance"] == pytest.approx(4.5**2, rel=1e-3)
