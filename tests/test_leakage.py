"""Timing-leakage analysis."""

import pytest

from repro.analysis.leakage import (
    TimingProfile,
    leakage_report,
    profile_sampler,
)
from repro.core.params import P1
from repro.cyclemodel.sampler_cycles import CycleKnuthYaoSampler
from repro.machine.machine import CortexM4
from repro.sampler.constant_time import ConstantTimeCdtSampler
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitsource import PrngBitSource
from repro.trng.xorshift import Xorshift128


def knuth_yao_factory(seed=11, **config):
    def factory():
        machine = CortexM4()
        sampler = CycleKnuthYaoSampler(
            ProbabilityMatrix.for_params(P1),
            P1.q,
            machine,
            PrngBitSource(Xorshift128(seed)),
            **config,
        )
        return sampler, machine

    return factory


def constant_time_factory(seed=11):
    def factory():
        machine = CortexM4()
        sampler = ConstantTimeCdtSampler.for_params(
            P1, PrngBitSource(Xorshift128(seed)), machine=machine
        )
        return sampler, machine

    return factory


@pytest.fixture(scope="module")
def alg1_profile():
    return profile_sampler(
        "alg1",
        knuth_yao_factory(use_lut1=False, use_lut2=False),
        P1.q,
        samples=2500,
    )


@pytest.fixture(scope="module")
def ky_profile():
    return profile_sampler("ky", knuth_yao_factory(), P1.q, samples=2500)


@pytest.fixture(scope="module")
def ct_profile():
    return profile_sampler("ct", constant_time_factory(), P1.q, samples=800)


class TestKnuthYaoLeaks:
    def test_alg1_strong_magnitude_correlation(self, alg1_profile):
        """The raw bit-scan walk's duration tracks the sampled value."""
        assert alg1_profile.magnitude_correlation() > 0.2

    def test_alg1_timing_spread_across_magnitudes(self, alg1_profile):
        assert alg1_profile.magnitude_timing_spread() > 50.0

    def test_lut_sampler_flattens_but_not_constant(self, ky_profile):
        """An incidental finding the model surfaces: the LUTs resolve
        levels 1-13 in uniform time, so Alg. 2's residual spread is
        tiny — but the fallback path keeps it from being constant."""
        assert not ky_profile.is_constant_time()
        assert ky_profile.cycle_variance() > 0
        assert ky_profile.magnitude_timing_spread() < 10.0

    def test_not_constant_time(self, alg1_profile):
        assert not alg1_profile.is_constant_time()
        assert alg1_profile.cycle_variance() > 0


class TestConstantTimeDoesNot:
    def test_zero_variance(self, ct_profile):
        assert ct_profile.is_constant_time()

    def test_zero_correlation(self, ct_profile):
        assert ct_profile.magnitude_correlation() == 0.0
        assert ct_profile.magnitude_timing_spread() == 0.0

    def test_price(self, ky_profile, ct_profile):
        assert ct_profile.mean_cycles() > 10 * ky_profile.mean_cycles()


class TestProfileMechanics:
    def test_observation_count(self, ky_profile):
        assert ky_profile.sample_count == 2500

    def test_per_magnitude_means(self, ky_profile):
        means = ky_profile.per_magnitude_means()
        assert 0 in means  # magnitude 0 dominates the distribution
        assert all(v > 0 for v in means.values())

    def test_constant_series_correlation_is_zero(self):
        profile = TimingProfile("x", ((0, 5), (1, 5), (2, 5)))
        assert profile.magnitude_correlation() == 0.0

    def test_spread_requires_populous_groups(self):
        profile = TimingProfile("x", ((0, 5), (1, 9)))
        assert profile.magnitude_timing_spread(min_group=20) == 0.0

    def test_report_renders(self, ky_profile, ct_profile):
        text = leakage_report([ky_profile, ct_profile])
        assert "corr(|x|, cycles)" in text
        assert "ky" in text and "ct" in text
