"""Packed/unrolled NTT must be bit-identical to Alg. 3."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import P1, P2, custom_parameter_set
from repro.ntt.optimized import ntt_forward_packed, ntt_inverse_packed
from repro.ntt.reference import ntt_forward, ntt_inverse
from tests.conftest import MEDIUM, SMALL


def poly(params):
    return st.lists(
        st.integers(min_value=0, max_value=params.q - 1),
        min_size=params.n,
        max_size=params.n,
    )


class TestEquivalenceWithReference:
    @given(poly(SMALL))
    @settings(max_examples=50, deadline=None)
    def test_forward_small(self, a):
        assert ntt_forward_packed(a, SMALL) == ntt_forward(a, SMALL)

    @given(poly(SMALL))
    @settings(max_examples=50, deadline=None)
    def test_inverse_small(self, a_hat):
        assert ntt_inverse_packed(a_hat, SMALL) == ntt_inverse(a_hat, SMALL)

    @given(poly(MEDIUM))
    @settings(max_examples=15, deadline=None)
    def test_forward_medium(self, a):
        assert ntt_forward_packed(a, MEDIUM) == ntt_forward(a, MEDIUM)

    @pytest.mark.parametrize("params", [P1, P2], ids=["P1", "P2"])
    def test_paper_params(self, params, poly_factory):
        a = poly_factory(params)
        assert ntt_forward_packed(a, params) == ntt_forward(a, params)
        assert ntt_inverse_packed(a, params) == ntt_inverse(a, params)


class TestRoundTrip:
    @given(poly(SMALL))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, a):
        assert ntt_inverse_packed(ntt_forward_packed(a, SMALL), SMALL) == a


class TestValidation:
    def test_wrong_length(self):
        with pytest.raises(ValueError):
            ntt_forward_packed([0] * 8, SMALL)

    def test_minimum_size(self):
        tiny = custom_parameter_set(2, 13, 3.0)
        with pytest.raises(ValueError):
            ntt_forward_packed([0, 0], tiny)

    def test_wide_coefficients_rejected(self):
        # A modulus needing >16 bits cannot use the packed layout.
        wide = custom_parameter_set(4, 786433, 3.0)  # 786432 = 2^18*3
        assert wide.coefficient_bits > 16
        with pytest.raises(ValueError):
            ntt_forward_packed([0, 0, 0, 0], wide)
