"""Fused 3-polynomial NTT must equal three independent transforms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import P1, P2
from repro.ntt.parallel import ntt_forward_parallel3
from repro.ntt.reference import ntt_forward
from tests.conftest import SMALL


def poly():
    return st.lists(
        st.integers(min_value=0, max_value=SMALL.q - 1),
        min_size=SMALL.n,
        max_size=SMALL.n,
    )


class TestParallelEquivalence:
    @given(poly(), poly(), poly())
    @settings(max_examples=30, deadline=None)
    def test_matches_three_separate(self, a, b, c):
        A, B, C = ntt_forward_parallel3(a, b, c, SMALL)
        assert A == ntt_forward(a, SMALL)
        assert B == ntt_forward(b, SMALL)
        assert C == ntt_forward(c, SMALL)

    @pytest.mark.parametrize("params", [P1, P2], ids=["P1", "P2"])
    def test_paper_params(self, params, poly_factory):
        a, b, c = (poly_factory(params) for _ in range(3))
        A, B, C = ntt_forward_parallel3(a, b, c, params)
        assert A == ntt_forward(a, params)
        assert B == ntt_forward(b, params)
        assert C == ntt_forward(c, params)

    def test_inputs_not_mutated(self):
        a = [1] * SMALL.n
        b = [2] * SMALL.n
        c = [3] * SMALL.n
        ntt_forward_parallel3(a, b, c, SMALL)
        assert a == [1] * SMALL.n
        assert b == [2] * SMALL.n
        assert c == [3] * SMALL.n

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            ntt_forward_parallel3([0] * 8, [0] * SMALL.n, [0] * SMALL.n, SMALL)
