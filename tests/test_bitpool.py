"""Register bit pool with the clz sentinel (Section III-E)."""

import pytest

from repro.machine.machine import CortexM4
from repro.trng.bitpool import BitPool
from repro.trng.trng import SimulatedTrng
from repro.trng.xorshift import Xorshift128


def make_pool(seed=5, machine=None):
    trng = SimulatedTrng(Xorshift128(seed), machine=machine)
    return BitPool(trng, machine=machine), trng


class TestBitDelivery:
    def test_31_bits_per_word_in_order(self):
        pool, _ = make_pool(seed=5)
        ref = Xorshift128(5)
        expected = []
        for _ in range(4):
            word = ref.next_u32()
            expected.extend((word >> i) & 1 for i in range(31))
        got = [pool.bit() for _ in range(4 * 31)]
        assert got == expected
        assert pool.refills == 4

    def test_sentinel_never_leaks(self):
        # Bit 31 of each word is the sentinel: with a PRNG word whose
        # MSB is 0 the pool must still deliver only the low 31 bits.
        pool, _ = make_pool(seed=7)
        for _ in range(310):
            assert pool.bit() in (0, 1)
        assert pool.refills == 10

    def test_fresh_bits_bookkeeping(self):
        pool, _ = make_pool()
        assert pool.fresh_bits == 0  # empty register
        pool.bit()
        assert pool.fresh_bits == 30
        pool.bits(10)
        assert pool.fresh_bits == 20


class TestMultiBitExtraction:
    def test_bits_match_bit_sequence(self):
        pool_a, _ = make_pool(seed=9)
        pool_b, _ = make_pool(seed=9)
        value = pool_a.bits(12)
        expected = 0
        for i in range(12):
            expected |= pool_b.bit() << i
        assert value == expected

    def test_shortfall_discards_and_refills(self):
        pool, _ = make_pool(seed=3)
        pool.bits(25)  # 6 fresh bits left
        assert pool.fresh_bits == 6
        value = pool.bits(8)  # needs 8: discard 6, refill
        assert 0 <= value < 256
        assert pool.discarded_bits == 6
        assert pool.refills == 2

    def test_limits(self):
        pool, _ = make_pool()
        with pytest.raises(ValueError):
            pool.bits(32)  # only 31 usable bits per word
        with pytest.raises(ValueError):
            pool.bits(-1)
        assert pool.bits(0) == 0

    def test_consumption_counter(self):
        pool, _ = make_pool()
        pool.bits(8)
        pool.bit()
        assert pool.bits_consumed == 9


class TestCycleAccounting:
    def test_machine_charged(self):
        machine = CortexM4()
        pool, _ = make_pool(seed=1, machine=machine)
        pool.bits(8)
        assert machine.cycles > 0

    def test_refill_costs_more_than_hit(self):
        machine = CortexM4()
        pool, trng = make_pool(seed=1, machine=machine)
        pool.bits(8)  # includes a refill
        refill_cost = machine.cycles
        start = machine.cycles
        pool.bits(8)  # register still has 23 fresh bits
        hit_cost = machine.cycles - start
        assert refill_cost > hit_cost
