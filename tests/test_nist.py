"""NIST SP800-22 subset: positive and negative controls."""

import pytest

from repro.trng.nist import (
    ALL_TESTS,
    approximate_entropy,
    bits_from_bytes,
    block_frequency,
    cumulative_sums,
    longest_run_of_ones,
    monobit,
    run_suite,
    runs,
    suite_passes,
)
from repro.trng.xorshift import Xorshift128


@pytest.fixture(scope="module")
def good_bits():
    return bits_from_bytes(Xorshift128(1234).bytes(4000))


class TestPositiveControls:
    def test_xorshift_passes_suite(self, good_bits):
        results = run_suite(good_bits)
        assert len(results) == len(ALL_TESTS)
        for name, result in results.items():
            assert result.passed(0.01), f"{name}: p={result.p_value}"

    def test_multiple_seeds_pass(self):
        for seed in (7, 99, 2024):
            bits = bits_from_bytes(Xorshift128(seed).bytes(2000))
            assert suite_passes(bits)


class TestNegativeControls:
    def test_constant_zero_fails(self):
        assert not suite_passes([0] * 4096)

    def test_constant_one_fails_monobit(self):
        assert monobit([1] * 1000).p_value < 0.01

    def test_alternating_fails_runs_style_tests(self):
        bits = [0, 1] * 2048
        # Perfectly alternating bits have ideal frequency but absurd
        # run structure.
        assert monobit(bits).passed()
        assert not runs(bits).passed() or not approximate_entropy(bits).passed()

    def test_biased_stream_fails(self):
        import random

        rng = random.Random(0)
        bits = [1 if rng.random() < 0.6 else 0 for _ in range(4096)]
        assert not monobit(bits).passed()

    def test_blocky_stream_fails_block_frequency(self):
        bits = ([0] * 128 + [1] * 128) * 8
        assert not block_frequency(bits).passed()


class TestIndividualTests:
    def test_monobit_balanced(self):
        assert monobit([0, 1] * 500).p_value == pytest.approx(1.0)

    def test_longest_run_requires_length(self):
        with pytest.raises(ValueError):
            longest_run_of_ones([0, 1] * 8)

    def test_block_frequency_requires_block(self):
        with pytest.raises(ValueError):
            block_frequency([0, 1], block=128)

    def test_cumulative_sums_extremes(self):
        # A straight run drifts maximally: tiny p-value.
        assert cumulative_sums([1] * 1000).p_value < 0.01

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            monobit([])

    def test_non_bit_rejected(self):
        with pytest.raises(ValueError):
            monobit([0, 2, 1])


class TestBitsFromBytes:
    def test_lsb_first(self):
        assert bits_from_bytes(b"\x01") == [1, 0, 0, 0, 0, 0, 0, 0]
        assert bits_from_bytes(b"\x80") == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_length(self):
        assert len(bits_from_bytes(b"abc")) == 24
