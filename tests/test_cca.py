"""Fujisaki-Okamoto CCA transform and its DRBG."""

import pytest

from repro import P1, P2, seeded_scheme
from repro.core.cca import (
    CcaEncapsulation,
    CcaRejection,
    FujisakiOkamotoKem,
    _deterministic_encrypt,
    _randomness_seed,
)
from repro.core.params import custom_parameter_set
from repro.core.scheme import Ciphertext
from repro.trng.bitsource import PrngBitSource
from repro.trng.drbg import HashDrbgBitSource
from repro.trng.xorshift import Xorshift128


@pytest.fixture(params=[P1, P2], ids=["P1", "P2"])
def setup(request):
    params = request.param
    scheme = seeded_scheme(params, seed=71)
    keys = scheme.generate_keypair()
    kem = FujisakiOkamotoKem(params, PrngBitSource(Xorshift128(72)))
    return params, keys, kem


class TestDrbg:
    def test_deterministic(self):
        a = HashDrbgBitSource(b"seed")
        b = HashDrbgBitSource(b"seed")
        assert [a.bit() for _ in range(200)] == [
            b.bit() for _ in range(200)
        ]

    def test_seed_sensitivity(self):
        a = HashDrbgBitSource(b"seed-a")
        b = HashDrbgBitSource(b"seed-b")
        assert [a.bit() for _ in range(64)] != [b.bit() for _ in range(64)]

    def test_domain_separation(self):
        a = HashDrbgBitSource(b"seed", domain=b"d1")
        b = HashDrbgBitSource(b"seed", domain=b"d2")
        assert a.bits(64) != b.bits(64)

    def test_empty_seed_rejected(self):
        with pytest.raises(ValueError):
            HashDrbgBitSource(b"")

    def test_statistical_sanity(self):
        from repro.trng.nist import monobit, runs

        drbg = HashDrbgBitSource(b"statistical")
        bits = [drbg.bit() for _ in range(8192)]
        assert monobit(bits).passed()
        assert runs(bits).passed()


class TestDeterministicEncryption:
    def test_same_message_same_ciphertext(self, setup):
        params, keys, _ = setup
        m = bytes(range(32))
        a = _deterministic_encrypt(params, keys.public, m)
        b = _deterministic_encrypt(params, keys.public, m)
        assert a.c1_hat == b.c1_hat and a.c2_hat == b.c2_hat

    def test_different_message_different_ciphertext(self, setup):
        params, keys, _ = setup
        a = _deterministic_encrypt(params, keys.public, b"\x00" * 32)
        b = _deterministic_encrypt(params, keys.public, b"\x01" * 32)
        assert a.c1_hat != b.c1_hat

    def test_randomness_bound_to_public_key(self, setup):
        params, keys, _ = setup
        other = seeded_scheme(params, seed=99).generate_keypair()
        m = b"\x42" * 32
        assert _randomness_seed(m, keys.public) != _randomness_seed(
            m, other.public
        )


class TestKemRoundTrip:
    def test_agreement(self, setup):
        _, keys, kem = setup
        encapsulation, sender = kem.encapsulate(keys.public)
        receiver = kem.decapsulate(keys.private, keys.public, encapsulation)
        assert sender.key == receiver.key

    def test_fresh_keys(self, setup):
        _, keys, kem = setup
        _, a = kem.encapsulate(keys.public)
        _, b = kem.encapsulate(keys.public)
        assert a.key != b.key


class TestCcaRejection:
    def test_flipped_coefficient_rejected(self, setup):
        params, keys, kem = setup
        encapsulation, _ = kem.encapsulate(keys.public)
        ct = encapsulation.ciphertext
        tampered = Ciphertext(
            params,
            ((ct.c1_hat[0] + 1) % params.q,) + ct.c1_hat[1:],
            ct.c2_hat,
        )
        with pytest.raises(CcaRejection):
            kem.decapsulate(
                keys.private, keys.public, CcaEncapsulation(tampered)
            )

    def test_swapped_halves_rejected(self, setup):
        params, keys, kem = setup
        encapsulation, _ = kem.encapsulate(keys.public)
        ct = encapsulation.ciphertext
        swapped = Ciphertext(params, ct.c2_hat, ct.c1_hat)
        with pytest.raises(CcaRejection):
            kem.decapsulate(
                keys.private, keys.public, CcaEncapsulation(swapped)
            )

    def test_wrong_key_rejected(self, setup):
        params, keys, kem = setup
        other = seeded_scheme(params, seed=123).generate_keypair()
        encapsulation, _ = kem.encapsulate(keys.public)
        with pytest.raises(CcaRejection):
            kem.decapsulate(
                other.private, keys.public, encapsulation
            )

    def test_reaction_attack_surface_closed(self, setup):
        """Many small perturbations: every one must be rejected, never
        silently accepted with a different key (the CPA scheme's
        reaction-attack surface)."""
        params, keys, kem = setup
        encapsulation, _ = kem.encapsulate(keys.public)
        ct = encapsulation.ciphertext
        q = params.q
        for index in (0, 1, params.n - 1):
            for delta in (1, q // 4):
                c2 = list(ct.c2_hat)
                c2[index] = (c2[index] + delta) % q
                tampered = Ciphertext(params, ct.c1_hat, tuple(c2))
                with pytest.raises(CcaRejection):
                    kem.decapsulate(
                        keys.private,
                        keys.public,
                        CcaEncapsulation(tampered),
                    )


class TestValidation:
    def test_small_ring_rejected(self):
        tiny = custom_parameter_set(64, 7681, 11.31)
        with pytest.raises(ValueError):
            FujisakiOkamotoKem(tiny, PrngBitSource(Xorshift128(1)))
