"""The keystore subsystem: slots, derivation, LRU, and wire codecs.

Unit-level coverage of :mod:`repro.keystore` plus the new
key-addressed wire encodings in :mod:`repro.service.protocol` and the
worker key-install codec — including truncation-at-every-offset fuzz
in the :mod:`tests.test_serialize_properties` style, since key refs
cross the same trust boundary as every other wire object.
"""

import pytest

from repro import P1, P2, seeded_scheme
from repro.keystore import (
    DEFAULT_KEY_NAME,
    KeyInfo,
    KeyStore,
    key_seed,
)
from repro.service import protocol
from repro.service.executor import (
    decode_worker_key,
    encode_worker_key,
    serving_seed,
)
from repro.service.protocol import (
    GENERATION_CURRENT,
    STATUS_BAD_REQUEST,
    STATUS_KEY_NOT_FOUND,
    STATUS_STALE_KEY_GENERATION,
    ServiceError,
    decode_key_ref,
    encode_key_ref,
    validate_key_name,
)


def _keypair(seed=77):
    return seeded_scheme(P1, seed=seed).generate_keypair()


def _store(seed=7, capacity=8, default=True, params=P1):
    return KeyStore(
        params,
        seed=seed,
        hot_capacity=capacity,
        default_keypair=_keypair() if default else None,
    )


# ----------------------------------------------------------------------
# Seed derivation
# ----------------------------------------------------------------------
class TestKeySeed:
    def test_deterministic(self):
        assert key_seed(7, "tenant-a", 0) == key_seed(7, "tenant-a", 0)

    def test_domain_separated_from_keygen_and_serving(self):
        # The keystore derivation tree must not land on the base
        # (keygen) stream or the serving stream for the same seed.
        for seed in (0, 1, 7, 2015, 0xFFFFFFFF):
            for name in ("a", "tenant-a", "x" * 64):
                for generation in (0, 1, 2, 1000):
                    derived = key_seed(seed, name, generation)
                    assert derived != seed & 0xFFFFFFFF
                    assert derived != serving_seed(seed)

    def test_distinct_across_names_and_generations(self):
        seeds = {
            key_seed(7, name, generation)
            for name in ("a", "b", "tenant-a", "tenant-b", "a.b-c_d")
            for generation in range(8)
        }
        assert len(seeds) == 5 * 8

    def test_generation_changes_stream(self):
        assert key_seed(7, "t", 0) != key_seed(7, "t", 1)

    def test_seed_changes_stream(self):
        assert key_seed(7, "t", 0) != key_seed(8, "t", 0)


# ----------------------------------------------------------------------
# Key names
# ----------------------------------------------------------------------
class TestKeyNames:
    @pytest.mark.parametrize(
        "name", ["a", "tenant-a", "A.b_c-9", "x" * 64, "0"]
    )
    def test_valid(self, name):
        assert validate_key_name(name) == name

    @pytest.mark.parametrize(
        "name", ["", "x" * 65, "with space", "sla/sh", "ünïcode", "a\x00b"]
    )
    def test_invalid(self, name):
        with pytest.raises(ValueError):
            validate_key_name(name)

    def test_non_string(self):
        with pytest.raises(ValueError):
            validate_key_name(b"bytes")  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Key-ref codec (wire trust boundary)
# ----------------------------------------------------------------------
class TestKeyRefCodec:
    def test_roundtrip(self):
        ref = encode_key_ref("tenant-a", 3)
        name, generation, rest = decode_key_ref(ref)
        assert (name, generation, rest) == ("tenant-a", 3, b"")

    def test_roundtrip_with_payload(self):
        ref = encode_key_ref("t", GENERATION_CURRENT)
        name, generation, rest = decode_key_ref(ref + b"payload")
        assert (name, generation, rest) == (
            "t",
            GENERATION_CURRENT,
            b"payload",
        )

    def test_truncation_at_every_offset(self):
        ref = encode_key_ref("tenant-a", 5)
        for cut in range(len(ref)):
            with pytest.raises(ValueError):
                decode_key_ref(ref[:cut])

    def test_flipped_length_byte(self):
        ref = bytearray(encode_key_ref("tenant-a", 5))
        ref[0] = 200  # claims a 200-byte name
        with pytest.raises(ValueError):
            decode_key_ref(bytes(ref))

    def test_empty_name_rejected_both_ways(self):
        with pytest.raises(ValueError):
            encode_key_ref("", 0)
        # A forged zero-length name on the wire is rejected too.
        with pytest.raises(ValueError):
            decode_key_ref(b"\x00" + b"\x00\x00\x00\x00")

    def test_invalid_name_bytes_rejected(self):
        payload = bytes([2]) + b"\xff\xfe" + b"\x00\x00\x00\x00"
        with pytest.raises(ValueError):
            decode_key_ref(payload)

    def test_generation_out_of_range(self):
        with pytest.raises(ValueError):
            encode_key_ref("t", -1)
        with pytest.raises(ValueError):
            encode_key_ref("t", 1 << 32)


class TestWorkerKeyCodec:
    def test_roundtrip(self):
        from repro.core import serialize

        pair = _keypair(5)
        pub, prv = serialize.serialize_keypair(pair)
        payload = encode_worker_key("tenant-a", 2, pub, prv)
        name, generation, decoded = decode_worker_key(payload)
        assert (name, generation) == ("tenant-a", 2)
        assert decoded.public == pair.public
        assert decoded.private == pair.private

    def test_truncation_at_every_offset(self):
        pair = _keypair(5)
        from repro.core import serialize

        pub, prv = serialize.serialize_keypair(pair)
        payload = encode_worker_key("t", 1, pub, prv)
        # Every strict prefix must fail loudly, never half-install.
        for cut in range(0, len(payload), 97):
            with pytest.raises(ValueError):
                decode_worker_key(payload[:cut])
        with pytest.raises(ValueError):
            decode_worker_key(payload[:-1])
        with pytest.raises(ValueError):
            decode_worker_key(payload + b"\x00")

    def test_current_sentinel_rejected(self):
        pair = _keypair(5)
        from repro.core import serialize

        pub, prv = serialize.serialize_keypair(pair)
        payload = encode_worker_key(
            "t", GENERATION_CURRENT, pub, prv
        )
        with pytest.raises(ValueError):
            decode_worker_key(payload)

    def test_mixed_params_rejected(self):
        from repro.core import serialize

        pub, _ = serialize.serialize_keypair(_keypair(5))
        _, prv2 = serialize.serialize_keypair(
            seeded_scheme(P2, seed=5).generate_keypair()
        )
        with pytest.raises(ValueError):
            decode_worker_key(encode_worker_key("t", 0, pub, prv2))


# ----------------------------------------------------------------------
# KeyStore lifecycle
# ----------------------------------------------------------------------
class TestKeyStoreLifecycle:
    def test_create_info_list(self):
        store = _store()
        info = store.create("tenant-a")
        assert info == KeyInfo("tenant-a", 0, "active", "P1", False)
        assert store.info("tenant-a").generation == 0
        names = [i.name for i in store.list()]
        assert names == [DEFAULT_KEY_NAME, "tenant-a"]
        assert "tenant-a" in store
        assert len(store) == 2

    def test_duplicate_create_rejected(self):
        store = _store()
        store.create("tenant-a")
        with pytest.raises(ServiceError) as err:
            store.create("tenant-a")
        assert err.value.status == STATUS_BAD_REQUEST

    def test_rotate_bumps_generation(self):
        store = _store()
        store.create("t")
        assert store.rotate("t").generation == 1
        assert store.rotate("t").generation == 2
        assert store.info("t").generation == 2

    def test_retire_then_not_found(self):
        store = _store()
        store.create("t")
        assert store.retire("t").state == "retired"
        for call in (
            lambda: store.rotate("t"),
            lambda: store.retire("t"),
            lambda: store.materialize("t"),
        ):
            with pytest.raises(ServiceError) as err:
                call()
            assert err.value.status == STATUS_KEY_NOT_FOUND
        # A retired name stays reserved (generations must not reset).
        with pytest.raises(ServiceError):
            store.create("t")

    def test_unknown_key_not_found(self):
        store = _store()
        with pytest.raises(ServiceError) as err:
            store.materialize("ghost")
        assert err.value.status == STATUS_KEY_NOT_FOUND

    def test_default_key_cannot_rotate_or_retire(self):
        store = _store()
        for call in (
            lambda: store.rotate(DEFAULT_KEY_NAME),
            lambda: store.retire(DEFAULT_KEY_NAME),
        ):
            with pytest.raises(ServiceError) as err:
                call()
            assert err.value.status == STATUS_BAD_REQUEST

    def test_invalid_names_rejected_as_bad_request(self):
        store = _store()
        for name in ("", "with space", "x" * 65):
            with pytest.raises(ServiceError) as err:
                store.create(name)
            assert err.value.status == STATUS_BAD_REQUEST

    def test_store_without_default(self):
        store = _store(default=False)
        assert DEFAULT_KEY_NAME not in store
        with pytest.raises(ServiceError) as err:
            store.materialize(DEFAULT_KEY_NAME)
        assert err.value.status == STATUS_KEY_NOT_FOUND
        store.create("t")
        assert [i.name for i in store.list()] == ["t"]

    def test_default_keypair_params_checked(self):
        with pytest.raises(ValueError):
            KeyStore(P2, default_keypair=_keypair())

    def test_hot_capacity_validated(self):
        with pytest.raises(ValueError):
            KeyStore(P1, hot_capacity=0)


# ----------------------------------------------------------------------
# Generations and staleness
# ----------------------------------------------------------------------
class TestGenerations:
    def test_current_sentinel_resolves(self):
        store = _store()
        store.create("t")
        assert store.resolve_generation("t", GENERATION_CURRENT) == 0
        store.rotate("t")
        assert store.resolve_generation("t", GENERATION_CURRENT) == 1

    def test_stale_generation_typed(self):
        store = _store()
        store.create("t")
        store.rotate("t")
        with pytest.raises(ServiceError) as err:
            store.materialize("t", 0)
        assert err.value.status == STATUS_STALE_KEY_GENERATION

    def test_future_generation_also_stale(self):
        store = _store()
        store.create("t")
        with pytest.raises(ServiceError) as err:
            store.resolve_generation("t", 5)
        assert err.value.status == STATUS_STALE_KEY_GENERATION

    def test_default_generation_is_zero(self):
        store = _store()
        assert store.resolve_generation(DEFAULT_KEY_NAME, 0) == 0
        assert (
            store.resolve_generation(
                DEFAULT_KEY_NAME, GENERATION_CURRENT
            )
            == 0
        )
        with pytest.raises(ServiceError):
            store.resolve_generation(DEFAULT_KEY_NAME, 1)


# ----------------------------------------------------------------------
# Materialization and the hot LRU
# ----------------------------------------------------------------------
class TestMaterialization:
    def test_deterministic_across_stores(self):
        a, b = _store(seed=7), _store(seed=7)
        a.create("t")
        # Creation order and interleaved traffic must not matter.
        b.create("other")
        b.create("t")
        b.materialize("other")
        assert (
            a.materialize("t").public_bytes
            == b.materialize("t").public_bytes
        )
        assert (
            a.materialize("t").private_bytes
            == b.materialize("t").private_bytes
        )

    def test_different_seeds_differ(self):
        a, b = _store(seed=7), _store(seed=8)
        a.create("t")
        b.create("t")
        assert (
            a.materialize("t").public_bytes
            != b.materialize("t").public_bytes
        )

    def test_rotation_changes_material(self):
        store = _store()
        store.create("t")
        before = store.materialize("t").public_bytes
        store.rotate("t")
        assert store.materialize("t").public_bytes != before

    def test_default_material_is_the_constructor_keypair(self):
        pair = _keypair()
        store = KeyStore(P1, seed=7, default_keypair=pair)
        material = store.materialize(DEFAULT_KEY_NAME)
        assert material.keypair.public == pair.public
        assert material.generation == 0

    def test_eviction_and_regeneration(self):
        store = _store(capacity=2)
        for name in ("a", "b", "c"):
            store.create(name)
        first = store.materialize("a").public_bytes
        store.materialize("b")
        assert store.hot_names() == ["a", "b"]
        store.materialize("c")  # evicts the LRU entry ("a")
        assert store.hot_names() == ["b", "c"]
        assert store.stats()["evictions"] == 1
        assert not store.info("a").hot
        # Regeneration after eviction is bit-identical.
        assert store.materialize("a").public_bytes == first
        assert store.hot_names() == ["c", "a"]

    def test_lru_touch_order(self):
        store = _store(capacity=2)
        for name in ("a", "b"):
            store.create(name)
            store.materialize(name)
        store.materialize("a")  # "b" is now least recently used
        store.create("c")
        store.materialize("c")
        assert store.hot_names() == ["a", "c"]

    def test_hot_hit_counters(self):
        store = _store()
        store.create("t")
        store.materialize("t")
        store.materialize("t")
        stats = store.stats()
        assert stats["materializations"] == 1
        assert stats["hot_hits"] == 1

    def test_evict_api(self):
        store = _store()
        store.create("t")
        store.materialize("t")
        assert store.evict("t") is True
        assert store.evict("t") is False
        assert store.info("t").state == "active"  # metadata survives

    def test_stats_shape(self):
        store = _store()
        store.create("a")
        store.create("b")
        store.retire("b")
        stats = store.stats()
        assert stats["keys"] == 2
        assert stats["active"] == 1
        assert stats["retired"] == 1
        assert stats["has_default"] is True


# ----------------------------------------------------------------------
# Flush pinning: a running fused window owns its key matrix
# ----------------------------------------------------------------------
class TestFlushPinning:
    def test_pin_blocks_eviction_unpin_reshrinks(self):
        store = _store(capacity=2)
        for name in ("a", "b", "c"):
            store.create(name)
        for name in ("a", "b", "c"):  # the server pins, then resolves
            store.pin(name)
            store.materialize(name)
        # Under pins the hot set transiently exceeds capacity rather
        # than regenerate a key under a running batch.
        assert set(store.hot_names()) == {"a", "b", "c"}
        assert store.stats()["pinned"] == 3
        before = store.stats()["evictions"]
        store.unpin("a")
        # Releasing a pin re-applies the capacity bound immediately,
        # and the freshly unpinned LRU entry is the victim.
        assert store.hot_names() == ["b", "c"]
        assert store.stats()["evictions"] == before + 1
        store.unpin("b")
        store.unpin("c")
        assert store.stats()["pinned"] == 0

    def test_pin_is_refcounted(self):
        store = _store(capacity=1)
        store.create("a")
        store.create("b")
        store.materialize("a")
        store.pin("a")
        store.pin("a")
        store.unpin("a")
        store.materialize("b")  # one pin still held: "a" survives
        assert "a" in store.hot_names()
        store.unpin("a")
        store.materialize("b")
        assert store.hot_names() == ["b"]

    def test_pinned_material_is_not_regenerated(self):
        store = _store(capacity=1)
        store.create("a")
        store.create("b")
        first = store.materialize("a")
        store.pin("a")
        store.materialize("b")
        # Same object, not a bit-identical regeneration: the pinned
        # entry never left the hot set.
        assert store.materialize("a") is first
        store.unpin("a")

    def test_default_key_pins_are_noops(self):
        store = _store()
        store.pin(DEFAULT_KEY_NAME)
        assert store.stats()["pinned"] == 0
        store.unpin(DEFAULT_KEY_NAME)  # must not raise or underflow
        assert store.stats()["pinned"] == 0

    def test_unpin_without_pin_is_harmless(self):
        store = _store()
        store.create("a")
        store.unpin("a")
        assert store.stats()["pinned"] == 0
