"""Coefficient packing helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ntt.packing import (
    pack_pair,
    pack_polynomial,
    unpack_pair,
    unpack_polynomial,
)

halfword = st.integers(min_value=0, max_value=0xFFFF)


class TestPairPacking:
    @given(halfword, halfword)
    @settings(max_examples=100)
    def test_roundtrip(self, lo, hi):
        assert unpack_pair(pack_pair(lo, hi)) == (lo, hi)

    def test_layout(self):
        # lo occupies bits 0..15 (the first halfword in memory).
        assert pack_pair(0x1234, 0xABCD) == 0xABCD1234

    def test_range_checks(self):
        with pytest.raises(ValueError):
            pack_pair(0x10000, 0)
        with pytest.raises(ValueError):
            pack_pair(0, -1)
        with pytest.raises(ValueError):
            unpack_pair(1 << 32)
        with pytest.raises(ValueError):
            unpack_pair(-1)


class TestPolynomialPacking:
    @given(st.lists(halfword, min_size=2, max_size=64).filter(lambda l: len(l) % 2 == 0))
    @settings(max_examples=100)
    def test_roundtrip(self, coeffs):
        assert unpack_polynomial(pack_polynomial(coeffs)) == coeffs

    def test_word_count(self):
        assert len(pack_polynomial([0] * 256)) == 128

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            pack_polynomial([1, 2, 3])
