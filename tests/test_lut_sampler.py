"""Alg. 2 LUT sampler: table construction and equivalence with Alg. 1."""

from fractions import Fraction

import pytest

from repro.core.params import P1, P2
from repro.sampler.ddg import lut_failure_probability
from repro.sampler.knuth_yao import KnuthYaoSampler
from repro.sampler.lut_sampler import (
    FAILURE_FLAG,
    LUT1_LEVELS,
    LUT2_LEVELS,
    LutKnuthYaoSampler,
    _walk,
    build_luts,
)
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitsource import PrngBitSource, QueueBitSource
from repro.trng.xorshift import Xorshift128


@pytest.fixture(scope="module")
def pmat():
    return ProbabilityMatrix.for_params(P1)


@pytest.fixture(scope="module")
def luts(pmat):
    return build_luts(pmat)


class TestLutConstruction:
    def test_lut1_size(self, luts):
        assert len(luts.lut1) == 256

    def test_lut2_size_paper(self, luts):
        # d after a LUT1 failure ranges over 0..6 -> 7 * 32 = 224 entries.
        assert luts.max_failure_distance1 == 6
        assert len(luts.lut2) == 224

    def test_lut1_entries_match_direct_walk(self, pmat, luts):
        for index in range(256):
            row, d = _walk(pmat, index, LUT1_LEVELS, 0, 0)
            entry = luts.lut1[index]
            if row is not None:
                assert entry == row
            else:
                assert entry == (FAILURE_FLAG | d)

    def test_lut2_entries_match_direct_walk(self, pmat, luts):
        for d0 in range(luts.max_failure_distance1 + 1):
            for r5 in range(32):
                row, d = _walk(pmat, r5, LUT2_LEVELS, LUT1_LEVELS, d0)
                entry = luts.lut2[d0 * 32 + r5]
                if row is not None:
                    assert entry == row
                else:
                    assert entry == (FAILURE_FLAG | d)

    def test_lut1_failure_rate_matches_exact(self, pmat, luts):
        exact = lut_failure_probability(pmat, LUT1_LEVELS)
        assert Fraction(luts.lut1_failure_entries, 256) == exact

    def test_p2_luts_also_build(self):
        luts2 = build_luts(ProbabilityMatrix.for_params(P2))
        assert len(luts2.lut1) == 256
        assert luts2.max_failure_distance1 >= 0


class TestEquivalenceWithAlg1:
    """For any shared bit stream the LUT sampler returns the same
    magnitude as Alg. 1 (the sign bit is consumed at a different stream
    offset on the fast path, so only magnitudes align in general; on the
    scan-fallback path even the sign must agree)."""

    @pytest.mark.parametrize("seed", range(300))
    def test_magnitude_equivalence(self, pmat, seed):
        ref = KnuthYaoSampler(pmat, P1.q, PrngBitSource(Xorshift128(seed)))
        lut = LutKnuthYaoSampler(pmat, P1.q, PrngBitSource(Xorshift128(seed)))
        q = P1.q
        a, b = ref.sample(), lut.sample()
        mag = lambda v: v if v <= q // 2 else q - v  # noqa: E731
        assert mag(a) == mag(b)

    def test_sign_equivalence_on_fallback(self, pmat):
        # Find streams that miss both LUTs; there the full value must
        # agree because the bit offsets re-align after 13 levels.
        found = 0
        seed = 0
        q = P1.q
        while found < 5 and seed < 30000:
            probe = LutKnuthYaoSampler(
                pmat, q, PrngBitSource(Xorshift128(seed))
            )
            value = probe.sample()
            if probe.scan_fallbacks:
                ref = KnuthYaoSampler(
                    pmat, q, PrngBitSource(Xorshift128(seed))
                )
                assert ref.sample() == value
                found += 1
            seed += 1
        assert found == 5, "not enough fallback streams found"


class TestHitCounters:
    def test_hit_rates_match_fig2(self, pmat):
        sampler = LutKnuthYaoSampler(
            pmat, P1.q, PrngBitSource(Xorshift128(11))
        )
        n = 30000
        sampler.sample_polynomial(n)
        lut1_rate = sampler.lut1_hits / n
        assert lut1_rate == pytest.approx(0.9727, abs=0.005)
        fallback_rate = sampler.scan_fallbacks / n
        assert fallback_rate == pytest.approx(0.0013, abs=0.002)

    def test_lut2_disabled_falls_back_to_scan(self, pmat):
        sampler = LutKnuthYaoSampler(
            pmat, P1.q, PrngBitSource(Xorshift128(12)), use_lut2=False
        )
        sampler.sample_polynomial(5000)
        assert sampler.lut2_hits == 0
        assert sampler.scan_fallbacks > 0


class TestDistribution:
    def test_variance(self, pmat):
        sampler = LutKnuthYaoSampler(
            pmat, P1.q, PrngBitSource(Xorshift128(13))
        )
        values = [sampler.sample_centered() for _ in range(20000)]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert var == pytest.approx(P1.sigma**2, rel=0.05)
        assert abs(mean) < 0.15
