"""Cross-backend equivalence: every backend agrees bit-for-bit.

The backend layer's core contract: ``python-reference``,
``python-packed``, and ``numpy`` are interchangeable — same inputs,
same outputs, everywhere.  These tests pin that on the NTT kernels
(against each other and the schoolbook oracle), the batched transforms,
and full scheme round trips across all NTT-friendly parameter sets.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import seeded_scheme
from repro.backend import available_backends, get_backend
from repro.core.params import P1, P2
from repro.ntt.polymul import ntt_multiply, schoolbook_negacyclic
from tests.conftest import MEDIUM, SMALL

ALL_PARAMS = [SMALL, MEDIUM, P1, P2]
BACKENDS = [name for name, ok in available_backends().items() if ok]


def backends():
    return [get_backend(name) for name in BACKENDS]


def random_poly(params, rng):
    return [rng.randrange(params.q) for _ in range(params.n)]


@pytest.mark.parametrize(
    "params", ALL_PARAMS, ids=[p.name for p in ALL_PARAMS]
)
class TestNttEquivalence:
    def test_forward_agrees(self, params):
        rng = random.Random(0xA11CE)
        reference = get_backend("python-reference")
        for _ in range(5):
            poly = random_poly(params, rng)
            expected = reference.ntt_forward(poly, params)
            for backend in backends():
                assert backend.ntt_forward(poly, params) == expected, (
                    backend.name
                )

    def test_inverse_agrees(self, params):
        rng = random.Random(0xB0B)
        reference = get_backend("python-reference")
        for _ in range(5):
            poly = random_poly(params, rng)
            expected = reference.ntt_inverse(poly, params)
            for backend in backends():
                assert backend.ntt_inverse(poly, params) == expected, (
                    backend.name
                )

    def test_forward_inverse_roundtrip(self, params):
        rng = random.Random(0xC0DE)
        poly = random_poly(params, rng)
        for backend in backends():
            assert (
                backend.ntt_inverse(backend.ntt_forward(poly, params), params)
                == poly
            ), backend.name

    def test_ntt_multiply_matches_schoolbook(self, params):
        rng = random.Random(0xD00D)
        a, b = random_poly(params, rng), random_poly(params, rng)
        expected = schoolbook_negacyclic(a, b, params)
        for backend in backends():
            assert backend.ntt_multiply(a, b, params) == expected, (
                backend.name
            )
        for name in BACKENDS:
            assert ntt_multiply(a, b, params, implementation=name) == expected

    def test_batched_transforms_match_singles(self, params):
        rng = random.Random(0xFEED)
        rows = [random_poly(params, rng) for _ in range(7)]
        reference = get_backend("python-reference")
        fwd_expected = [reference.ntt_forward(r, params) for r in rows]
        inv_expected = [reference.ntt_inverse(r, params) for r in rows]
        for backend in backends():
            fwd = backend.rows(
                backend.ntt_forward_batch(backend.matrix(rows), params)
            )
            inv = backend.rows(
                backend.ntt_inverse_batch(backend.matrix(rows), params)
            )
            assert fwd == fwd_expected, backend.name
            assert inv == inv_expected, backend.name

    def test_batched_pointwise_match_singles(self, params):
        rng = random.Random(0xACE)
        lhs = [random_poly(params, rng) for _ in range(4)]
        rhs = [random_poly(params, rng) for _ in range(4)]
        reference = get_backend("python-reference")
        for op, batch_op in (
            ("pointwise_mul", "pointwise_mul_batch"),
            ("pointwise_add", "pointwise_add_batch"),
            ("pointwise_sub", "pointwise_sub_batch"),
        ):
            expected = [
                getattr(reference, op)(a, b, params)
                for a, b in zip(lhs, rhs)
            ]
            for backend in backends():
                got = backend.rows(
                    getattr(backend, batch_op)(
                        backend.matrix(lhs), backend.matrix(rhs), params
                    )
                )
                assert got == expected, (backend.name, op)


@pytest.mark.parametrize(
    "params", ALL_PARAMS, ids=[p.name for p in ALL_PARAMS]
)
class TestPerRowOpsEquivalence:
    """Fused-window per-row operand ops: gather == loop == broadcast.

    The cross-key batcher hands every backend a small per-flush key
    matrix plus per-item row indices.  The base-class loop fallback and
    the NumPy fancy-index gather must agree bit-for-bit, and a one-row
    matrix with all-zero indices must reproduce the broadcast
    (single-key) path exactly — that degeneration is what keeps the
    default-key path bit-identical to the pre-fusion service.
    """

    def test_rows_ops_match_loop_fallback(self, params):
        rng = random.Random(0x5EED)
        items = [random_poly(params, rng) for _ in range(6)]
        keys = [random_poly(params, rng) for _ in range(3)]
        rows = [0, 2, 1, 2, 0, 1]
        reference = get_backend("python-reference")
        for op, single in (
            ("pointwise_mul_rows", "pointwise_mul"),
            ("pointwise_add_rows", "pointwise_add"),
            ("pointwise_sub_rows", "pointwise_sub"),
        ):
            expected = [
                getattr(reference, single)(item, keys[row], params)
                for item, row in zip(items, rows)
            ]
            for backend in backends():
                got = backend.rows(
                    getattr(backend, op)(
                        backend.matrix(items),
                        backend.matrix(keys),
                        rows,
                        params,
                    )
                )
                assert got == expected, (backend.name, op)

    def test_ntt_multiply_rows_matches_singles(self, params):
        rng = random.Random(0xF00D)
        items = [random_poly(params, rng) for _ in range(5)]
        keys = [random_poly(params, rng) for _ in range(2)]
        rows = [1, 0, 1, 1, 0]
        reference = get_backend("python-reference")
        expected = [
            reference.ntt_multiply(item, keys[row], params)
            for item, row in zip(items, rows)
        ]
        for backend in backends():
            got = backend.rows(
                backend.ntt_multiply_rows(
                    backend.matrix(items),
                    backend.matrix(keys),
                    rows,
                    params,
                )
            )
            assert got == expected, backend.name

    def test_one_row_matrix_degenerates_to_broadcast(self, params):
        rng = random.Random(0xABCD)
        items = [random_poly(params, rng) for _ in range(4)]
        key = random_poly(params, rng)
        for backend in backends():
            broadcast = backend.rows(
                backend.pointwise_mul_batch(
                    backend.matrix(items), key, params
                )
            )
            gathered = backend.rows(
                backend.pointwise_mul_rows(
                    backend.matrix(items),
                    backend.matrix([key]),
                    [0] * len(items),
                    params,
                )
            )
            assert gathered == broadcast, backend.name

    def test_mixed_generations_of_same_name_are_distinct_rows(
        self, params
    ):
        # Two generations of one key name are simply two different
        # matrix rows — materialized from the keystore derivation, the
        # fused result must equal encrypting against each generation's
        # material individually.
        from repro.keystore import KeyStore

        if params not in (P1, P2):
            pytest.skip("keystore sampling needs the paper's moduli")
        store = KeyStore(params, seed=13)
        store.create("t")
        gen0 = store.materialize("t", 0)
        store.rotate("t")
        gen1 = store.materialize("t", 1)
        keys = [
            list(gen0.keypair.public.a_hat),
            list(gen1.keypair.public.a_hat),
        ]
        rng = random.Random(0xDADA)
        items = [random_poly(params, rng) for _ in range(4)]
        rows = [0, 1, 0, 1]
        reference = get_backend("python-reference")
        expected = [
            reference.pointwise_mul(item, keys[row], params)
            for item, row in zip(items, rows)
        ]
        for backend in backends():
            got = backend.rows(
                backend.pointwise_mul_rows(
                    backend.matrix(items),
                    backend.matrix(keys),
                    rows,
                    params,
                )
            )
            assert got == expected, backend.name

    def test_out_of_range_row_rejected(self, params):
        rng = random.Random(0xBEEF)
        items = [random_poly(params, rng) for _ in range(2)]
        keys = [random_poly(params, rng)]
        for backend in backends():
            for bad in ([0, 1], [-1, 0]):
                with pytest.raises((ValueError, IndexError)):
                    backend.pointwise_mul_rows(
                        backend.matrix(items),
                        backend.matrix(keys),
                        bad,
                        params,
                    )

    def test_row_count_must_match_items(self, params):
        rng = random.Random(0xCAFE)
        items = [random_poly(params, rng) for _ in range(3)]
        keys = [random_poly(params, rng)]
        for backend in backends():
            with pytest.raises(ValueError):
                backend.pointwise_mul_rows(
                    backend.matrix(items),
                    backend.matrix(keys),
                    [0, 0],
                    params,
                )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_property_rows_gather_matches_loop(seed):
    """NumPy gather vs explicit per-row singles, random shapes."""
    rng = random.Random(seed)
    n_keys = rng.randrange(1, 5)
    n_items = rng.randrange(1, 9)
    items = [random_poly(SMALL, rng) for _ in range(n_items)]
    keys = [random_poly(SMALL, rng) for _ in range(n_keys)]
    rows = [rng.randrange(n_keys) for _ in range(n_items)]
    reference = get_backend("python-reference")
    expected = [
        reference.ntt_multiply(item, keys[row], SMALL)
        for item, row in zip(items, rows)
    ]
    for backend in backends():
        got = backend.rows(
            backend.ntt_multiply_rows(
                backend.matrix(items),
                backend.matrix(keys),
                rows,
                SMALL,
            )
        )
        assert got == expected, backend.name


@settings(max_examples=15, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=0, max_value=SMALL.q - 1),
        min_size=SMALL.n,
        max_size=SMALL.n,
    )
)
def test_property_forward_agrees_on_small_ring(values):
    expected = get_backend("python-reference").ntt_forward(values, SMALL)
    for backend in backends():
        assert backend.ntt_forward(values, SMALL) == expected, backend.name


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_property_ntt_multiply_matches_oracle(seed):
    rng = random.Random(seed)
    a, b = random_poly(SMALL, rng), random_poly(SMALL, rng)
    expected = schoolbook_negacyclic(a, b, SMALL)
    for backend in backends():
        assert backend.ntt_multiply(a, b, SMALL) == expected, backend.name


@pytest.mark.parametrize("params", [P1, P2], ids=["P1", "P2"])
def test_scheme_roundtrip_identical_across_backends(params):
    """Keygen/encrypt/decrypt bit streams agree across all backends."""
    outputs = {}
    for name in BACKENDS:
        scheme = seeded_scheme(params, seed=99, backend=name)
        keypair = scheme.generate_keypair()
        message = bytes(range(32))
        ciphertext = scheme.encrypt(keypair.public, message)
        plaintext = scheme.decrypt(keypair.private, ciphertext, length=32)
        outputs[name] = (
            keypair.public.a_hat,
            keypair.public.p_hat,
            keypair.private.r2_hat,
            ciphertext.c1_hat,
            ciphertext.c2_hat,
            plaintext,
        )
    reference = outputs["python-reference"]
    for name, got in outputs.items():
        assert got == reference, name
