"""Live-service metrics: scrape round trip, legacy view, CLI.

End-to-end checks for the observability tentpole: a real server plus a
real ``/metrics`` listener on loopback port 0, scraped over HTTP and
validated against the full naming contract; the binary ``STATS``
opcode pinned byte-stable against the pre-metrics nested-dict shape;
and the ``rlwe-repro metrics`` scrape command.  asyncio tests are
driven through ``asyncio.run`` (no pytest-asyncio dependency).
"""

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import P1, seeded_scheme
from repro.cli import main as cli_main
from repro.metrics import (
    MetricsHttpServer,
    parse_exposition,
    scrape,
    validate_families,
)
from repro.metrics.http import CONTENT_TYPE, ScrapeError
from repro.metrics.instruments import REQUIRED_FAMILIES
from repro.service.client import RlweServiceClient
from repro.service.server import start_server


def run(coro):
    return asyncio.run(coro)


def scheme():
    return seeded_scheme(P1, seed=1234)


async def _serve_and_scrape(drive):
    """Start server + metrics listener, run ``drive(client)``, scrape."""
    server = await start_server(scheme(), port=0)
    metrics_http = MetricsHttpServer(
        server.service.metrics.registry, port=0
    )
    await metrics_http.start()
    try:
        client = await RlweServiceClient.connect(port=server.port)
        try:
            result = await drive(client)
        finally:
            await client.close()
        text = await scrape("127.0.0.1", metrics_http.port)
        return server.service, result, text
    finally:
        await metrics_http.close()
        await server.close()


class TestLiveScrape:
    def test_scrape_is_complete_valid_and_consistent(self):
        async def drive(client):
            payload = b"metrics-integration"
            for _ in range(10):
                await client.encrypt(payload)
            await client.create_key("tenant-a")
            for _ in range(5):
                await client.key_encrypt("tenant-a", 0, payload)
            return await client.stats()

        service, stats, text = run(_serve_and_scrape(drive))
        families = parse_exposition(text)

        # Every family scrapes typed, HELP'd, and naming-contract clean.
        assert validate_families(families, require_naming=True) == []
        missing = [f for f in REQUIRED_FAMILIES if f not in families]
        assert missing == []

        # The scraped request counters agree with the driver's count.
        requests = families["repro_requests_total"]
        ok = {
            sample.labels["op"]: sample.value
            for sample in requests.samples
            if sample.labels["status"] == "ok"
        }
        assert ok["encrypt"] == 10
        assert ok["key_encrypt"] == 5
        assert ok["create_key"] == 1
        assert ok["stats"] >= 1

        # The legacy STATS view and the registry derive from one source.
        assert stats["ops"]["encrypt"]["items"] == 10
        items = {
            sample.labels["op"]: sample.value
            for sample in families["repro_coalescer_items_total"].samples
        }
        assert items["encrypt"] == 10

    def test_stats_ops_view_matches_pre_metrics_shape_exactly(self):
        async def drive(client):
            for _ in range(7):
                await client.encrypt(b"byte-stability")
            return await client.stats()

        service, stats, _ = run(_serve_and_scrape(drive))
        legacy = {
            name: dict(
                batcher.stats,
                mean_batch_size=batcher.mean_batch_size,
                mean_flush_ms=batcher.mean_flush_ms,
                inflight_flushes=batcher.inflight_flushes,
            )
            for name, batcher in service.batchers.items()
        }
        # Byte-stable: same keys, same order, same float values.
        assert json.dumps(stats["ops"]) == json.dumps(legacy)


class TestHttpEndpoint:
    def test_routes_and_content_type(self):
        async def go():
            from repro.metrics import MetricsRegistry

            registry = MetricsRegistry()
            registry.counter("repro_pings_total", "pings").inc()
            listener = MetricsHttpServer(registry, port=0)
            await listener.start()
            try:
                base = f"http://127.0.0.1:{listener.port}"

                def fetch(path, method="GET"):
                    request = urllib.request.Request(
                        base + path, method=method
                    )
                    try:
                        with urllib.request.urlopen(request) as response:
                            return (
                                response.status,
                                response.headers.get("Content-Type"),
                                response.read().decode(),
                            )
                    except urllib.error.HTTPError as error:
                        return error.code, None, ""

                loop = asyncio.get_running_loop()
                results = {}
                for name, path, method in (
                    ("metrics", "/metrics", "GET"),
                    ("health", "/healthz", "GET"),
                    ("missing", "/nope", "GET"),
                    ("post", "/metrics", "POST"),
                ):
                    results[name] = await loop.run_in_executor(
                        None, fetch, path, method
                    )
                return results
            finally:
                await listener.close()

        results = run(go())
        status, content_type, body = results["metrics"]
        assert status == 200
        assert content_type == CONTENT_TYPE
        assert "repro_pings_total 1" in body
        assert results["health"][0] == 200
        assert results["missing"][0] == 404
        assert results["post"][0] == 405

    def test_scrape_failure_raises_scrape_error(self):
        async def go():
            # Grab a port that is certainly closed by the time we dial.
            server = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            with pytest.raises(ScrapeError):
                await scrape("127.0.0.1", port, timeout=1.0)

        run(go())


class TestMetricsCli:
    def _with_listener(self, argv_tail, capsys):
        # The CLI spins its own event loop, so the server and listener
        # must keep serving on a loop that runs concurrently with the
        # CLI invocation: park that loop on a background thread.
        holder = {}

        async def setup():
            server = await start_server(scheme(), port=0)
            listener = MetricsHttpServer(
                server.service.metrics.registry, port=0
            )
            await listener.start()
            client = await RlweServiceClient.connect(port=server.port)
            await client.encrypt(b"cli-scrape")
            await client.close()
            holder["server"] = server
            holder["listener"] = listener
            return listener.port

        async def teardown():
            await holder["listener"].close()
            await holder["server"].close()

        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            port = asyncio.run_coroutine_threadsafe(
                setup(), loop
            ).result(timeout=30)
            code = cli_main(
                ["metrics", "--port", str(port)] + argv_tail
            )
            captured = capsys.readouterr()
            asyncio.run_coroutine_threadsafe(teardown(), loop).result(
                timeout=30
            )
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=30)
            loop.close()
        return code, captured

    def test_validate_passes_on_live_server(self, capsys):
        code, captured = self._with_listener(["--validate"], capsys)
        assert code == 0
        assert "exposition OK" in captured.out
        assert "naming contract satisfied" in captured.out

    def test_json_output_is_machine_readable(self, capsys):
        code, captured = self._with_listener(["--json"], capsys)
        assert code == 0
        families = json.loads(captured.out)
        by_name = {family["name"]: family for family in families}
        assert "repro_requests_total" in by_name
        assert by_name["repro_requests_total"]["type"] == "counter"
        sample_ops = {
            sample["labels"]["op"]
            for sample in by_name["repro_requests_total"]["samples"]
        }
        assert "encrypt" in sample_ops

    def test_raw_output_is_the_exposition(self, capsys):
        code, captured = self._with_listener([], capsys)
        assert code == 0
        parse_exposition(captured.out)
        assert "# TYPE repro_requests_total counter" in captured.out

    def test_unreachable_target_exits_nonzero(self, capsys):
        async def free_port():
            server = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            return port

        port = run(free_port())
        code = cli_main(
            ["metrics", "--port", str(port), "--timeout", "1.0"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
