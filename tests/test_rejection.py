"""Rejection sampler baseline."""

import pytest

from repro.core.params import P1
from repro.sampler.distribution import DiscreteGaussian
from repro.sampler.rejection import RejectionSampler
from repro.trng.bitsource import PrngBitSource
from repro.trng.xorshift import Xorshift128


@pytest.fixture
def sampler():
    return RejectionSampler.for_params(P1, PrngBitSource(Xorshift128(21)))


class TestSampling:
    def test_range(self, sampler):
        for _ in range(1000):
            value = sampler.sample()
            assert 0 <= value < P1.q
            centered = value if value <= P1.q // 2 else value - P1.q
            assert abs(centered) <= sampler.tail

    def test_moments(self, sampler):
        values = [sampler.sample_centered() for _ in range(15000)]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert abs(mean) < 0.15
        assert var == pytest.approx(P1.sigma**2, rel=0.06)

    def test_polynomial(self, sampler):
        assert len(sampler.sample_polynomial(32)) == 32


class TestAcceptanceRate:
    def test_observed_close_to_analytic(self, sampler):
        sampler.sample_polynomial(3000)
        observed = sampler.observed_acceptance_rate()
        analytic = sampler.acceptance_probability
        assert observed == pytest.approx(analytic, rel=0.1)

    def test_rejection_is_wasteful(self, sampler):
        """The motivation for Knuth-Yao: rejection from a uniform
        proposal accepts well under a quarter of its trials here."""
        sampler.sample_polynomial(2000)
        assert sampler.observed_acceptance_rate() < 0.25

    def test_trials_counted(self, sampler):
        sampler.sample()
        assert sampler.trials >= sampler.accepted >= 1


class TestThresholds:
    def test_threshold_zero_is_full_scale(self, sampler):
        assert sampler._thresholds[0] == 1 << sampler.precision

    def test_thresholds_decreasing(self, sampler):
        t = sampler._thresholds
        assert all(a >= b for a, b in zip(t, t[1:]))

    def test_q_validation(self):
        with pytest.raises(ValueError):
            RejectionSampler(
                DiscreteGaussian(sigma=P1.sigma),
                q=20,
                bits=PrngBitSource(Xorshift128(0)),
            )
