"""RingElement: ring axioms, domain tracking, NTT homomorphism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import P1
from repro.core.ring import Domain, RingElement
from tests.conftest import SMALL


def elements(params=SMALL):
    return st.builds(
        lambda values: RingElement.from_coefficients(params, values),
        st.lists(
            st.integers(min_value=0, max_value=params.q - 1),
            min_size=params.n,
            max_size=params.n,
        ),
    )


class TestConstruction:
    def test_zero_and_one(self):
        zero = RingElement.zero(SMALL)
        one = RingElement.one(SMALL)
        assert zero.is_zero()
        assert one.degree() == 0
        assert not one.is_zero()

    def test_monomial_reduction(self):
        # x^n = -1, x^(2n) = +1.
        n, q = SMALL.n, SMALL.q
        assert RingElement.monomial(SMALL, n).coefficients[0] == q - 1
        assert RingElement.monomial(SMALL, 2 * n).coefficients[0] == 1
        assert RingElement.monomial(SMALL, n + 3).coefficients[3] == q - 1

    def test_coefficients_normalised(self):
        e = RingElement.from_coefficients(SMALL, [-1] * SMALL.n)
        assert all(c == SMALL.q - 1 for c in e.coefficients)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            RingElement(SMALL, (0,) * 4)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            RingElement(SMALL, (SMALL.q,) + (0,) * (SMALL.n - 1))


class TestRingAxioms:
    @given(elements(), elements(), elements())
    @settings(max_examples=25, deadline=None)
    def test_add_associative_commutative(self, a, b, c):
        assert (a + b) + c == a + (b + c)
        assert a + b == b + a

    @given(elements())
    @settings(max_examples=25, deadline=None)
    def test_additive_identity_inverse(self, a):
        zero = RingElement.zero(SMALL)
        assert a + zero == a
        assert a + (-a) == zero

    @given(elements(), elements())
    @settings(max_examples=15, deadline=None)
    def test_mul_commutative(self, a, b):
        assert a * b == b * a

    @given(elements(), elements(), elements())
    @settings(max_examples=10, deadline=None)
    def test_distributivity(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(elements())
    @settings(max_examples=15, deadline=None)
    def test_multiplicative_identity(self, a):
        assert a * RingElement.one(SMALL) == a

    @given(elements(), st.integers(min_value=-100, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_scalar_multiplication(self, a, k):
        q = SMALL.q
        expected = RingElement.from_coefficients(
            SMALL, [c * k % q for c in a.coefficients]
        )
        assert a * k == expected
        assert k * a == expected

    def test_power(self):
        x = RingElement.monomial(SMALL, 1)
        assert x**5 == RingElement.monomial(SMALL, 5)
        assert x**0 == RingElement.one(SMALL)
        with pytest.raises(ValueError):
            x ** (-1)


class TestNttHomomorphism:
    @given(elements())
    @settings(max_examples=15, deadline=None)
    def test_roundtrip(self, a):
        assert a.to_ntt().from_ntt() == a

    @given(elements(), elements())
    @settings(max_examples=10, deadline=None)
    def test_multiplication_homomorphism(self, a, b):
        assert (a * b) == (a.to_ntt() * b.to_ntt()).from_ntt()

    @given(elements(), elements())
    @settings(max_examples=10, deadline=None)
    def test_addition_homomorphism(self, a, b):
        assert (a + b).to_ntt() == a.to_ntt() + b.to_ntt()

    def test_packed_backend(self):
        a = RingElement.from_coefficients(P1, range(P1.n))
        assert a.to_ntt("packed") == a.to_ntt("reference")
        assert a.to_ntt().from_ntt("packed") == a


class TestDomainSafety:
    def test_double_transform_rejected(self):
        a = RingElement.one(SMALL).to_ntt()
        with pytest.raises(ValueError):
            a.to_ntt()

    def test_from_ntt_on_coefficient_rejected(self):
        with pytest.raises(ValueError):
            RingElement.one(SMALL).from_ntt()

    def test_mixed_domain_arithmetic_rejected(self):
        a = RingElement.one(SMALL)
        b = RingElement.one(SMALL).to_ntt()
        with pytest.raises(ValueError):
            a + b
        with pytest.raises(ValueError):
            a * b

    def test_cross_ring_rejected(self):
        a = RingElement.one(SMALL)
        b = RingElement.one(P1)
        with pytest.raises(ValueError):
            a + b

    def test_ntt_domain_multiplication_is_pointwise(self):
        a = RingElement.from_coefficients(SMALL, range(SMALL.n)).to_ntt()
        b = RingElement.from_coefficients(SMALL, [2] * SMALL.n, Domain.NTT)
        product = a * b
        assert product.domain is Domain.NTT
        q = SMALL.q
        assert product.coefficients == tuple(
            x * 2 % q for x in a.coefficients
        )


class TestInspection:
    def test_degree(self):
        assert RingElement.zero(SMALL).degree() == -1
        assert RingElement.monomial(SMALL, 7).degree() == 7

    def test_centered_and_norm(self):
        q = SMALL.q
        e = RingElement.from_coefficients(
            SMALL, [q - 1, 1] + [0] * (SMALL.n - 2)
        )
        assert e.centered()[:2] == [-1, 1]
        assert e.infinity_norm() == 1
        assert RingElement.zero(SMALL).infinity_norm() == 0


class TestParameterSetEquality:
    def test_equal_valued_parameter_sets_are_compatible(self):
        """Regression: _check_compatible compared params with `is`, so
        two equal-valued ParameterSet instances wrongly raised."""
        from repro.core.params import custom_parameter_set

        clone = custom_parameter_set(
            SMALL.n, SMALL.q, SMALL.s, name=SMALL.name
        )
        assert clone is not SMALL
        a = RingElement.from_coefficients(SMALL, range(SMALL.n))
        b = RingElement.from_coefficients(clone, [1] * SMALL.n)
        total = a + b
        assert total.coefficients == tuple(
            (c + 1) % SMALL.q for c in range(SMALL.n)
        )
        assert (a * b).domain is Domain.COEFFICIENT

    def test_different_rings_still_rejected(self):
        from repro.core.params import custom_parameter_set

        other = custom_parameter_set(SMALL.n, 193, SMALL.s)
        a = RingElement.one(SMALL)
        b = RingElement.one(other)
        with pytest.raises(ValueError, match="different rings"):
            a + b
