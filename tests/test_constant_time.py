"""Constant-time CDT sampler: distribution equality and timing."""

import pytest

from repro.core.params import P1, P2
from repro.machine.machine import CortexM4
from repro.sampler.constant_time import ConstantTimeCdtSampler
from repro.sampler.distribution import DiscreteGaussian
from repro.trng.bitsource import PrngBitSource, QueueBitSource
from repro.trng.xorshift import Xorshift128


class TestDistribution:
    def test_exhaustive_magnitudes(self):
        """Full-scan CDT realises the fixed-point table exactly."""
        table = DiscreteGaussian(sigma=1.2).half_table(precision=10, tail=6)
        counts = {}
        for u in range(1 << 10):
            bits = QueueBitSource.from_integer(u, 10)
            sampler = ConstantTimeCdtSampler(table, 97, bits)
            row = sampler.sample_magnitude()
            counts[row] = counts.get(row, 0) + 1
        for x, p in enumerate(table.probabilities):
            assert counts.get(x, 0) == p, x

    def test_matches_variable_time_cdt(self):
        """Same table, same uniform draw => same magnitude as the
        binary-search CDT."""
        from repro.sampler.cdt import CdtSampler

        table = DiscreteGaussian(sigma=1.5).half_table(precision=12, tail=8)
        for u in range(0, 1 << 12, 7):
            ct = ConstantTimeCdtSampler(
                table, 97, QueueBitSource.from_integer(u, 12)
            )
            vt = CdtSampler(table, 97, QueueBitSource.from_integer(u, 12))
            assert ct.sample_magnitude() == vt.sample_magnitude()

    @pytest.mark.parametrize("params", [P1, P2], ids=["P1", "P2"])
    def test_moments(self, params):
        sampler = ConstantTimeCdtSampler.for_params(
            params, PrngBitSource(Xorshift128(3))
        )
        values = [sampler.sample_centered() for _ in range(12000)]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert abs(mean) < 0.2
        assert var == pytest.approx(params.sigma**2, rel=0.06)


class TestConstantTimeProperty:
    def test_cycle_count_identical_across_samples(self):
        machine = CortexM4()
        sampler = ConstantTimeCdtSampler.for_params(
            P1, PrngBitSource(Xorshift128(5)), machine=machine
        )
        costs = []
        for _ in range(200):
            before = machine.cycles
            sampler.sample()
            costs.append(machine.cycles - before)
        assert len(set(costs)) == 1, "cycle count varied across samples"

    def test_cost_independent_of_magnitude(self):
        """Force extreme uniforms (smallest/largest magnitudes): cost
        must not move."""
        table_costs = []
        for u_bits in (0, (1 << 109) - 1):
            machine = CortexM4()
            bits = QueueBitSource.from_integer(u_bits << 1, 110)
            sampler = ConstantTimeCdtSampler.for_params(
                P1, bits, machine=machine
            )
            sampler.sample()
            table_costs.append(machine.cycles)
        assert table_costs[0] == table_costs[1]

    def test_fixed_randomness_budget(self):
        bits = PrngBitSource(Xorshift128(6))
        sampler = ConstantTimeCdtSampler.for_params(P1, bits)
        sampler.sample()
        first = bits.bits_consumed
        sampler.sample()
        assert bits.bits_consumed == 2 * first
        assert first == sampler.bits_per_sample()

    def test_much_more_expensive_than_knuth_yao(self):
        """The trade-off that kept constant time out of the paper."""
        from repro.cyclemodel.sampler_cycles import CycleKnuthYaoSampler
        from repro.sampler.pmat import ProbabilityMatrix

        machine_ct = CortexM4()
        ct = ConstantTimeCdtSampler.for_params(
            P1, PrngBitSource(Xorshift128(7)), machine=machine_ct
        )
        ct.sample_polynomial(100)

        machine_ky = CortexM4()
        ky = CycleKnuthYaoSampler(
            ProbabilityMatrix.for_params(P1),
            P1.q,
            machine_ky,
            PrngBitSource(Xorshift128(7)),
        )
        ky.sample_polynomial(100)
        assert machine_ct.cycles > 10 * machine_ky.cycles


class TestValidation:
    def test_q_too_small(self):
        table = DiscreteGaussian(sigma=10.0).half_table(precision=16, tail=60)
        with pytest.raises(ValueError):
            ConstantTimeCdtSampler(table, 100, QueueBitSource([]))
