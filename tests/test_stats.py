"""Statistical verification helpers."""

from fractions import Fraction

import pytest

from repro.analysis.stats import (
    centered,
    chi_square_goodness_of_fit,
    count_samples,
    empirical_moments,
    sampling_sigma_estimate,
    total_variation_distance,
)


class TestChiSquare:
    def test_fair_coin_passes(self):
        observed = {0: 5020, 1: 4980}
        expected = {0: Fraction(1, 2), 1: Fraction(1, 2)}
        result = chi_square_goodness_of_fit(observed, expected)
        assert result.passed()
        assert result.degrees_of_freedom == 1

    def test_biased_coin_fails(self):
        observed = {0: 7000, 1: 3000}
        expected = {0: Fraction(1, 2), 1: Fraction(1, 2)}
        assert not chi_square_goodness_of_fit(observed, expected).passed()

    def test_sparse_tail_pooling(self):
        expected = {
            0: Fraction(9, 10),
            1: Fraction(9, 100),
            2: Fraction(9, 1000),
            3: Fraction(1, 1000),
        }
        observed = {0: 903, 1: 88, 2: 8, 3: 1}
        result = chi_square_goodness_of_fit(observed, expected)
        assert result.passed()

    def test_outside_support_pooled(self):
        # A sparse tail cell exists, so the out-of-support observation
        # joins the pooled cell instead of raising.
        expected = {
            0: Fraction(989, 1000),
            1: Fraction(1, 100),
            2: Fraction(1, 1000),
        }
        observed = {0: 989, 1: 9, 2: 1, 77: 1}
        result = chi_square_goodness_of_fit(observed, expected)
        assert result.statistic >= 0

    def test_outside_support_without_pool_rejected(self):
        expected = {0: Fraction(99, 100), 1: Fraction(1, 100)}
        observed = {0: 990, 1: 9, 77: 1}
        with pytest.raises(ValueError):
            chi_square_goodness_of_fit(observed, expected)

    def test_no_observations_rejected(self):
        with pytest.raises(ValueError):
            chi_square_goodness_of_fit({}, {0: Fraction(1)})

    def test_single_cell_rejected(self):
        with pytest.raises(ValueError):
            chi_square_goodness_of_fit({0: 100}, {0: Fraction(1)})


class TestMoments:
    def test_known_values(self):
        m = empirical_moments([1, 2, 3, 4])
        assert m["mean"] == 2.5
        assert m["variance"] == 1.25

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_moments([])


class TestHelpers:
    def test_count_samples(self):
        assert count_samples([1, 1, 2]) == {1: 2, 2: 1}

    def test_centered(self):
        assert centered(0, 97) == 0
        assert centered(48, 97) == 48
        assert centered(49, 97) == -48
        assert centered(96, 97) == -1

    def test_sigma_estimate(self):
        samples = [0, 1, 96, 2, 95] * 200  # +-1, +-2 around 0 mod 97
        sigma = sampling_sigma_estimate(samples, 97)
        assert 1.0 < sigma < 2.0

    def test_tv_distance_zero_for_exact(self):
        observed = {0: 50, 1: 50}
        expected = {0: Fraction(1, 2), 1: Fraction(1, 2)}
        assert total_variation_distance(observed, expected) == 0

    def test_tv_distance_disjoint_is_one(self):
        assert total_variation_distance(
            {0: 100}, {1: Fraction(1)}
        ) == pytest.approx(1.0)

    def test_tv_distance_empty_rejected(self):
        with pytest.raises(ValueError):
            total_variation_distance({}, {0: Fraction(1)})


class TestSamplerIntegration:
    def test_knuth_yao_passes_chi_square(self):
        """The headline statistical test: 40k real samples against the
        exact DDG distribution."""
        from repro.core.params import P1
        from repro.sampler.ddg import exact_output_distribution
        from repro.sampler.lut_sampler import LutKnuthYaoSampler
        from repro.sampler.pmat import ProbabilityMatrix
        from repro.trng.bitsource import PrngBitSource
        from repro.trng.xorshift import Xorshift128

        pmat = ProbabilityMatrix.for_params(P1)
        sampler = LutKnuthYaoSampler(
            pmat, P1.q, PrngBitSource(Xorshift128(314))
        )
        observed = count_samples(sampler.sample_polynomial(40000))
        expected = exact_output_distribution(pmat, P1.q)
        result = chi_square_goodness_of_fit(observed, expected)
        assert result.passed(alpha=0.001), result
