"""Cortex-M4 machine model: charging, regions, clz, divide."""

import pytest

from repro.machine.costs import CORTEX_M0PLUS, CORTEX_M4F
from repro.machine.machine import CortexM4, NullMachine


class TestCharging:
    def test_alu_and_mul_single_cycle(self):
        m = CortexM4()
        m.alu()
        m.mul()
        assert m.cycles == 2

    def test_counts(self):
        m = CortexM4()
        m.alu(5)
        m.load(2)
        m.store(3)
        assert m.cycles == 5 + 4 + 6

    def test_branch_costs(self):
        m = CortexM4()
        m.branch(taken=True)
        taken = m.cycles
        m.branch(taken=False)
        assert taken == CORTEX_M4F.branch_taken
        assert m.cycles - taken == CORTEX_M4F.branch_not_taken

    def test_call_ret(self):
        m = CortexM4()
        m.call()
        m.ret()
        assert m.cycles == CORTEX_M4F.call + CORTEX_M4F.ret

    def test_tick_and_reset(self):
        m = CortexM4()
        m.tick(100)
        assert m.cycles == 100
        m.reset()
        assert m.cycles == 0
        with pytest.raises(ValueError):
            m.tick(-1)


class TestClz:
    def test_values(self):
        m = CortexM4()
        assert m.clz(0) == 32
        assert m.clz(1) == 31
        assert m.clz(1 << 31) == 0
        assert m.clz(0xFFFF) == 16

    def test_cost(self):
        m = CortexM4()
        m.clz(5)
        assert m.cycles == CORTEX_M4F.clz

    def test_range_check(self):
        m = CortexM4()
        with pytest.raises(ValueError):
            m.clz(1 << 32)
        with pytest.raises(ValueError):
            m.clz(-1)


class TestDivide:
    def test_quotient_correct(self):
        m = CortexM4()
        assert m.div(100, 7) == 14

    def test_cost_range(self):
        for dividend, divisor in ((1, 1), (2**31, 1), (7681, 3), (0, 5)):
            m = CortexM4()
            m.div(dividend, divisor)
            assert CORTEX_M4F.div_min <= m.cycles <= CORTEX_M4F.div_max

    def test_wide_quotients_cost_more(self):
        assert CORTEX_M4F.div(2**31, 1) > CORTEX_M4F.div(8, 7)

    def test_divide_by_zero_returns_zero(self):
        m = CortexM4()
        assert m.div(5, 0) == 0  # M4 semantics with DIV_0_TRP clear


class TestRegions:
    def test_region_accumulates(self):
        m = CortexM4()
        with m.region("ntt"):
            m.alu(10)
        with m.region("ntt"):
            m.alu(5)
        assert m.region_cycles("ntt") == 15

    def test_nested_regions(self):
        m = CortexM4()
        with m.region("outer"):
            m.alu(2)
            with m.region("inner"):
                m.alu(3)
        assert m.region_cycles("inner") == 3
        assert m.region_cycles("outer") == 5

    def test_regions_dict(self):
        m = CortexM4()
        with m.region("a"):
            m.alu()
        assert m.regions == {"a": 1}

    def test_measure_helper(self):
        m = CortexM4()

        def kernel(machine, x):
            machine.alu(x)
            return x * 2

        result, cycles = m.measure(kernel, 7)
        assert result == 14 and cycles == 7


class TestNullMachine:
    def test_charges_nothing(self):
        m = NullMachine()
        m.alu(100)
        m.load(5)
        m.branch()
        m.tick(50)
        m.call()
        m.ret()
        assert m.cycles == 0

    def test_semantics_preserved(self):
        m = NullMachine()
        assert m.clz(1) == 31
        assert m.div(10, 3) == 3
        assert m.div(10, 0) == 0


class TestCostTables:
    def test_m0plus_differs(self):
        assert CORTEX_M0PLUS.mul > CORTEX_M4F.mul
        assert CORTEX_M0PLUS.clz > CORTEX_M4F.clz  # emulated, no clz insn

    def test_paper_facts_encoded(self):
        # Section III-A/III-C facts the model is built on.
        assert CORTEX_M4F.mul == 1
        assert CORTEX_M4F.load == 2
        assert CORTEX_M4F.div_min == 2 and CORTEX_M4F.div_max == 12
