"""Cross-module property suite: system-level invariants under hypothesis.

These properties tie multiple subsystems together — scheme over ring
algebra, samplers over shared tables, cycle models over functional
kernels — and are the reproduction's strongest correctness evidence
beyond the per-module tests.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.encoding import decode_bits, encode_bits
from repro.core.params import P1, custom_parameter_set
from repro.core.ring import RingElement
from repro.core.scheme import Ciphertext, RlweEncryptionScheme
from repro.ntt.reference import ntt_forward, ntt_inverse
from repro.trng.bitsource import PrngBitSource, QueueBitSource
from repro.trng.xorshift import Xorshift128
from tests.conftest import SMALL

#: A ring small enough for fast hypothesis exploration but with the
#: full-size modulus, so scheme noise margins behave like P1's.
TINY_FULLQ = custom_parameter_set(16, 7681, 11.31, name="tiny-fullq")


def coeffs(params):
    return st.lists(
        st.integers(min_value=0, max_value=params.q - 1),
        min_size=params.n,
        max_size=params.n,
    )


class TestSchemeAlgebra:
    """The scheme's correctness identity, checked symbolically."""

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_decryption_identity(self, seed):
        """INTT(c1 * r2 + c2) == r1*e1 + r2*e2 + e3 + mbar, exactly."""
        params = TINY_FULLQ
        scheme = RlweEncryptionScheme(
            params, bits=PrngBitSource(Xorshift128(seed))
        )
        keys = scheme.generate_keypair()
        q = params.q
        message_bits = [seed >> i & 1 for i in range(params.n)]
        mbar = encode_bits(message_bits, params)
        ct = scheme.encrypt_polynomial(keys.public, mbar)
        decrypted = scheme.decrypt_polynomial(keys.private, ct)

        # The correctness identity says decrypted = mbar + noise where
        # noise = r1*e1 + r2*e2 + e3; verify the residual is small
        # (well within 6 standard deviations of the analytic model).
        import math

        noise = [
            min((d - m) % q, (m - d) % q)
            for d, m in zip(decrypted, mbar)
        ]
        sigma2 = params.sigma**2
        bound = 6 * math.sqrt(2 * params.n * sigma2 * sigma2 + sigma2)
        assert all(x < bound for x in noise)
        assert decode_bits(decrypted, params) == message_bits

    @given(st.integers(min_value=0, max_value=2**16), st.data())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    def test_ciphertext_additivity(self, seed, data):
        """Enc(m1) + Enc(m2) decrypts to m1 XOR m2 at tiny n (noise is
        far below q/4, so the homomorphism is exact here)."""
        params = TINY_FULLQ
        scheme = RlweEncryptionScheme(
            params, bits=PrngBitSource(Xorshift128(seed))
        )
        keys = scheme.generate_keypair()
        bits1 = data.draw(st.lists(st.integers(0, 1), min_size=params.n,
                                   max_size=params.n))
        bits2 = data.draw(st.lists(st.integers(0, 1), min_size=params.n,
                                   max_size=params.n))
        ct1 = scheme.encrypt_polynomial(
            keys.public, encode_bits(bits1, params)
        )
        ct2 = scheme.encrypt_polynomial(
            keys.public, encode_bits(bits2, params)
        )
        q = params.q
        summed = Ciphertext(
            params,
            tuple((a + b) % q for a, b in zip(ct1.c1_hat, ct2.c1_hat)),
            tuple((a + b) % q for a, b in zip(ct1.c2_hat, ct2.c2_hat)),
        )
        decrypted = scheme.decrypt_polynomial(keys.private, summed)
        expected = [b1 ^ b2 for b1, b2 in zip(bits1, bits2)]
        assert decode_bits(decrypted, params) == expected


class TestNttRingConsistency:
    @given(coeffs(SMALL), coeffs(SMALL))
    @settings(max_examples=20, deadline=None)
    def test_convolution_theorem(self, a_vals, b_vals):
        """NTT(a * b) == NTT(a) . NTT(b) through the ring API."""
        a = RingElement.from_coefficients(SMALL, a_vals)
        b = RingElement.from_coefficients(SMALL, b_vals)
        assert (a * b).to_ntt() == a.to_ntt() * b.to_ntt()

    @given(coeffs(SMALL), st.integers(min_value=0, max_value=96))
    @settings(max_examples=20, deadline=None)
    def test_scalar_commutes_with_ntt(self, values, scalar):
        a = RingElement.from_coefficients(SMALL, values)
        assert (a * scalar).to_ntt() == a.to_ntt() * scalar

    @given(coeffs(SMALL))
    @settings(max_examples=20, deadline=None)
    def test_parseval_style_energy(self, values):
        """sum a_i * rev(a)_i invariance is messy in negacyclic rings;
        instead pin the transform's injectivity: distinct inputs map to
        distinct outputs (roundtrip equality is the witness)."""
        fwd = ntt_forward(values, SMALL)
        assert ntt_inverse(fwd, SMALL) == values


class TestSamplerTableConsistency:
    """All three samplers realise the same fixed-point table."""

    @given(st.integers(min_value=0, max_value=(1 << 12) - 1))
    @settings(max_examples=60, deadline=None)
    def test_cdt_variants_agree_per_uniform(self, u):
        from repro.sampler.cdt import CdtSampler
        from repro.sampler.constant_time import ConstantTimeCdtSampler
        from repro.sampler.distribution import DiscreteGaussian

        table = DiscreteGaussian(sigma=1.5).half_table(12, 8)
        vt = CdtSampler(table, 97, QueueBitSource.from_integer(u, 12))
        ct = ConstantTimeCdtSampler(
            table, 97, QueueBitSource.from_integer(u, 12)
        )
        assert vt.sample_magnitude() == ct.sample_magnitude()

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_lut_and_plain_knuth_yao_magnitudes(self, seed):
        from repro.sampler.knuth_yao import KnuthYaoSampler
        from repro.sampler.lut_sampler import LutKnuthYaoSampler
        from repro.sampler.pmat import ProbabilityMatrix

        pmat = ProbabilityMatrix.for_params(P1)
        plain = KnuthYaoSampler(
            pmat, P1.q, PrngBitSource(Xorshift128(seed))
        )
        lut = LutKnuthYaoSampler(
            pmat, P1.q, PrngBitSource(Xorshift128(seed))
        )
        q = P1.q
        mag = lambda v: v if v <= q // 2 else q - v  # noqa: E731
        assert mag(plain.sample()) == mag(lut.sample())


class TestSerializationTotality:
    @given(coeffs(SMALL), coeffs(SMALL))
    @settings(max_examples=30, deadline=None)
    def test_any_valid_ciphertext_roundtrips(self, c1, c2):
        from repro.core.serialize import (
            deserialize_ciphertext,
            serialize_ciphertext,
        )

        # SMALL is not a registered set; use P1-shaped data instead.
        rng = random.Random(sum(c1) + sum(c2))
        c1p = tuple(rng.randrange(P1.q) for _ in range(P1.n))
        c2p = tuple(rng.randrange(P1.q) for _ in range(P1.n))
        ct = Ciphertext(P1, c1p, c2p)
        assert deserialize_ciphertext(serialize_ciphertext(ct)) == ct


class TestCycleModelInvariants:
    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_cycle_counts_deterministic(self, seed):
        """Same inputs => exactly the same modelled cycles."""
        from repro.cyclemodel.ntt_cycles import ntt_forward_packed
        from repro.machine.machine import CortexM4

        rng = random.Random(seed)
        a = [rng.randrange(P1.q) for _ in range(P1.n)]
        _, c1 = CortexM4().measure(ntt_forward_packed, a, P1)
        _, c2 = CortexM4().measure(ntt_forward_packed, a, P1)
        assert c1 == c2

    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=8, deadline=None)
    def test_simd_never_slower(self, seed):
        from repro.cyclemodel.ntt_cycles import ntt_forward_packed
        from repro.cyclemodel.ntt_simd import ntt_forward_simd
        from repro.machine.machine import CortexM4

        rng = random.Random(seed)
        a = [rng.randrange(P1.q) for _ in range(P1.n)]
        r1, packed = CortexM4().measure(ntt_forward_packed, a, P1)
        r2, simd = CortexM4().measure(ntt_forward_simd, a, P1)
        assert r1 == r2
        assert simd < packed
