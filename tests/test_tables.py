"""ASCII table rendering."""

import pytest

from repro.analysis.tables import ComparisonRow, render_comparison, render_table


class TestRenderTable:
    def test_basic_structure(self):
        text = render_table(["name", "value"], [["a", 1], ["b", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("+")
        assert "| name" in lines[1]
        assert any("22" in line for line in lines)

    def test_title(self):
        text = render_table(["x"], [[1]], title="Table 9")
        assert text.splitlines()[0] == "Table 9"

    def test_thousands_separator(self):
        text = render_table(["cycles"], [[121166]])
        assert "121,166" in text

    def test_none_rendered_as_dash(self):
        text = render_table(["x"], [[None]])
        assert "-" in text

    def test_float_formats(self):
        text = render_table(["x"], [[0.1234], [3.14159], [12345.6]])
        assert "0.1234" in text
        assert "3.14" in text
        assert "12,346" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_bool_rendering(self):
        text = render_table(["flag"], [[True], [False]])
        assert "yes" in text and "no" in text


class TestComparisonRows:
    def test_ratio(self):
        row = ComparisonRow("ntt", measured=30000, paper=31583)
        assert row.ratio == pytest.approx(30000 / 31583)

    def test_missing_paper_value(self):
        row = ComparisonRow("x", measured=10)
        assert row.ratio is None
        assert row.as_row()[2] is None

    def test_render_comparison(self):
        text = render_comparison(
            [ComparisonRow("ntt", 30000, 31583)], title="t"
        )
        assert "measured/paper" in text
        assert "31,583" in text
