"""The metrics subsystem: registry semantics and the text format.

Covers the instrument behaviors the service instrumentation leans on
(exact integer counters, ``set_floor`` mirrors, high-water gauges,
histogram bucketing and interpolated quantiles), the Prometheus 0.0.4
exposition edge cases (label/HELP escaping, bucket cumulativity and
``+Inf``, the empty registry), the naming contract, thread safety
under concurrent updates, and the consumer-side parser/validator the
acceptance gate round-trips a live scrape through.
"""

import threading

import pytest

from repro.metrics import (
    MetricError,
    MetricsRegistry,
    metric_name_error,
    parse_exposition,
    validate_exposition,
    validate_families,
)
from repro.metrics.naming import label_name_error
from repro.metrics.parse import ExpositionParseError
from repro.metrics.registry import format_value


def registry():
    return MetricsRegistry()


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class TestCounter:
    def test_integer_arithmetic_stays_exact(self):
        counter = registry().counter("repro_items_total", "items")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42
        assert isinstance(counter.value, int)

    def test_negative_increment_rejected(self):
        counter = registry().counter("repro_items_total", "items")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_set_floor_is_monotonic(self):
        counter = registry().counter("repro_jobs_total", "jobs")
        counter.set_floor(10)
        counter.set_floor(7)  # a respawned worker reset its local count
        assert counter.value == 10
        counter.set_floor(12)
        assert counter.value == 12

    def test_labelled_counter_requires_labels(self):
        counter = registry().counter("repro_ops_total", "ops", ("op",))
        with pytest.raises(MetricError):
            counter.inc()
        counter.labels("encrypt").inc()
        assert counter.labels("encrypt").value == 1

    def test_label_value_count_enforced(self):
        counter = registry().counter("repro_ops_total", "ops", ("op",))
        with pytest.raises(MetricError):
            counter.labels("a", "b")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = registry().gauge("repro_inflight", "inflight")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6

    def test_set_max_keeps_high_water(self):
        gauge = registry().gauge("repro_peak", "peak")
        gauge.set_max(3)
        gauge.set_max(1)
        assert gauge.value == 3


class TestHistogram:
    def test_observations_land_in_first_fitting_bucket(self):
        histogram = registry().histogram(
            "repro_window_rows", "rows", buckets=(1, 2, 4)
        )
        for value in (1, 2, 2, 3, 100):
            histogram.observe(value)
        counts, total_sum, count = histogram.labels().snapshot()
        assert counts == [1, 2, 1]  # 100 lives only in implicit +Inf
        assert count == 5
        assert total_sum == pytest.approx(108.0)

    def test_buckets_must_be_increasing_finite_nonempty(self):
        reg = registry()
        with pytest.raises(MetricError):
            reg.histogram("repro_a_seconds", "x", buckets=())
        with pytest.raises(MetricError):
            reg.histogram("repro_b_seconds", "x", buckets=(1.0, 1.0))
        with pytest.raises(MetricError):
            reg.histogram("repro_c_seconds", "x", buckets=(2.0, 1.0))
        with pytest.raises(MetricError):
            reg.histogram(
                "repro_d_seconds", "x", buckets=(1.0, float("inf"))
            )

    def test_quantile_is_monotonic_and_clamped(self):
        histogram = registry().histogram(
            "repro_lat_seconds", "x", buckets=(0.001, 0.01, 0.1)
        )
        for _ in range(90):
            histogram.observe(0.005)
        for _ in range(10):
            histogram.observe(5.0)  # beyond the last finite bound
        quantiles = [
            histogram.quantile(q) for q in (0.0, 0.5, 0.9, 0.95, 1.0)
        ]
        assert quantiles == sorted(quantiles)
        # +Inf-region observations clamp to the last finite bound.
        assert histogram.quantile(1.0) == 0.1
        with pytest.raises(MetricError):
            histogram.quantile(1.5)

    def test_quantile_of_empty_histogram_is_zero(self):
        histogram = registry().histogram("repro_lat_seconds", "x")
        assert histogram.quantile(0.99) == 0.0


# ----------------------------------------------------------------------
# Registration and naming
# ----------------------------------------------------------------------
class TestRegistration:
    def test_duplicate_name_rejected(self):
        reg = registry()
        reg.counter("repro_items_total", "items")
        with pytest.raises(MetricError):
            reg.counter("repro_items_total", "items again")

    def test_documentation_required(self):
        with pytest.raises(MetricError):
            registry().counter("repro_items_total", "")

    @pytest.mark.parametrize(
        "kind,name",
        [
            ("counter", "items_total"),  # missing prefix
            ("counter", "repro_items"),  # missing _total
            ("gauge", "repro_items_total"),  # gauge posing as counter
            ("histogram", "repro_latency"),  # no unit suffix
            ("histogram", "repro_rows_total"),  # counter suffix
            ("counter", "repro_Items_total"),  # charset
        ],
    )
    def test_naming_contract_enforced(self, kind, name):
        reg = registry()
        assert metric_name_error(name, kind) is not None
        with pytest.raises(MetricError):
            getattr(reg, kind)(name, "doc")

    def test_strict_names_can_be_relaxed(self):
        reg = MetricsRegistry(strict_names=False)
        counter = reg.counter("whatever_name", "free-form")
        counter.inc()
        assert "whatever_name 1" in reg.expose()

    def test_bad_label_name_rejected(self):
        reg = registry()
        with pytest.raises(MetricError):
            reg.counter("repro_x_total", "x", ("BadLabel",))
        with pytest.raises(MetricError):
            reg.histogram("repro_x_seconds", "x", ("le",))
        assert label_name_error("le") is not None
        assert label_name_error("op") is None


# ----------------------------------------------------------------------
# Exposition format
# ----------------------------------------------------------------------
class TestExposition:
    def test_empty_registry_exposes_empty_string(self):
        assert registry().expose() == ""

    def test_childless_family_still_emits_help_and_type(self):
        reg = registry()
        reg.counter("repro_items_total", "items handled")
        text = reg.expose()
        assert "# HELP repro_items_total items handled\n" in text
        assert "# TYPE repro_items_total counter\n" in text

    def test_two_scrapes_of_identical_state_are_byte_identical(self):
        reg = registry()
        counter = reg.counter("repro_ops_total", "ops", ("op", "status"))
        counter.labels("encrypt", "ok").inc(3)
        counter.labels("decrypt", "ok").inc(1)
        reg.histogram("repro_lat_seconds", "lat").observe(0.01)
        assert reg.expose() == reg.expose()

    def test_label_escaping_round_trips(self):
        reg = registry()
        gauge = reg.gauge("repro_weird", "weird labels", ("key",))
        hostile = 'back\\slash "quoted"\nnewline'
        gauge.labels(hostile).set(7)
        text = reg.expose()
        assert '\\\\' in text and '\\"' in text and "\\n" in text
        families = parse_exposition(text)
        (sample,) = families["repro_weird"].samples
        assert sample.labels["key"] == hostile
        assert sample.value == 7

    def test_help_escaping_round_trips(self):
        reg = registry()
        reg.counter("repro_x_total", "line one\nline two \\ slash")
        families = parse_exposition(reg.expose())
        assert (
            families["repro_x_total"].documentation
            == "line one\nline two \\ slash"
        )

    def test_histogram_exposition_is_cumulative_with_inf(self):
        reg = registry()
        histogram = reg.histogram(
            "repro_rows", "rows", ("op",), buckets=(1, 2, 4)
        )
        child = histogram.labels("encrypt")
        for value in (1, 2, 2, 8):
            child.observe(value)
        text = reg.expose()
        assert (
            'repro_rows_bucket{op="encrypt",le="1.0"} 1\n'
            'repro_rows_bucket{op="encrypt",le="2.0"} 3\n'
            'repro_rows_bucket{op="encrypt",le="4.0"} 3\n'
            'repro_rows_bucket{op="encrypt",le="+Inf"} 4\n'
            'repro_rows_sum{op="encrypt"} 13.0\n'
            'repro_rows_count{op="encrypt"} 4\n'
        ) in text
        assert validate_exposition(text) is not None

    def test_format_value(self):
        assert format_value(3) == "3"
        assert format_value(2.5) == "2.5"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"
        with pytest.raises(MetricError):
            format_value(True)

    def test_collectors_run_before_exposition(self):
        reg = registry()
        gauge = reg.gauge("repro_mirrored", "mirror")
        source = {"value": 0}
        reg.register_collector(lambda: gauge.set(source["value"]))
        source["value"] = 11
        assert "repro_mirrored 11" in reg.expose()


# ----------------------------------------------------------------------
# Thread safety
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_concurrent_updates_stay_exact(self):
        reg = registry()
        counter = reg.counter("repro_hits_total", "hits", ("worker",))
        histogram = reg.histogram("repro_lat_seconds", "lat")
        threads = 8
        per_thread = 2000

        def pound(index: int) -> None:
            child = counter.labels(str(index % 2))
            for _ in range(per_thread):
                child.inc()
                histogram.observe(0.001)

        workers = [
            threading.Thread(target=pound, args=(i,))
            for i in range(threads)
        ]
        for worker in workers:
            worker.start()
        # Scrape while the writers hammer: must never crash or tear.
        for _ in range(20):
            parse_exposition(reg.expose())
        for worker in workers:
            worker.join()
        total = sum(
            child.value for _, child in counter.children()
        )
        assert total == threads * per_thread
        assert histogram.count == threads * per_thread


# ----------------------------------------------------------------------
# Parser / validator
# ----------------------------------------------------------------------
class TestParser:
    def test_unknown_escape_rejected(self):
        with pytest.raises(ExpositionParseError):
            parse_exposition('m{a="bad\\t"} 1\n')

    def test_trailing_token_rejected(self):
        with pytest.raises(ExpositionParseError):
            parse_exposition("m 1 1700000000\n")  # timestamps unsupported

    def test_unterminated_labels_rejected(self):
        with pytest.raises(ExpositionParseError):
            parse_exposition('m{a="x" 1\n')

    def test_validator_requires_type_and_help(self):
        problems = validate_families(parse_exposition("m 1\n"))
        assert any("TYPE" in p for p in problems)
        assert any("HELP" in p for p in problems)

    def test_validator_flags_negative_counter(self):
        text = (
            "# HELP repro_x_total x\n"
            "# TYPE repro_x_total counter\n"
            "repro_x_total -1\n"
        )
        problems = validate_families(parse_exposition(text))
        assert any("negative" in p for p in problems)

    def test_validator_flags_histogram_without_inf(self):
        text = (
            "# HELP repro_x_seconds x\n"
            "# TYPE repro_x_seconds histogram\n"
            'repro_x_seconds_bucket{le="1"} 1\n'
            "repro_x_seconds_sum 0.5\n"
            "repro_x_seconds_count 1\n"
        )
        problems = validate_families(parse_exposition(text))
        assert any("+Inf" in p for p in problems)

    def test_validator_flags_non_cumulative_buckets(self):
        text = (
            "# HELP repro_x_seconds x\n"
            "# TYPE repro_x_seconds histogram\n"
            'repro_x_seconds_bucket{le="1"} 5\n'
            'repro_x_seconds_bucket{le="2"} 3\n'
            'repro_x_seconds_bucket{le="+Inf"} 5\n'
            "repro_x_seconds_sum 1.0\n"
            "repro_x_seconds_count 5\n"
        )
        problems = validate_families(parse_exposition(text))
        assert any("cumulative" in p or "decreas" in p for p in problems)

    def test_validator_naming_is_opt_in(self):
        text = "# HELP foo x\n# TYPE foo gauge\nfoo 1\n"
        families = parse_exposition(text)
        assert validate_families(families) == []
        problems = validate_families(families, require_naming=True)
        assert any("repro_" in p for p in problems)

    def test_registry_round_trip_is_clean(self):
        reg = registry()
        counter = reg.counter("repro_ops_total", "ops", ("op",))
        counter.labels("encrypt").inc(5)
        reg.histogram("repro_lat_seconds", "lat", ("op",)).labels(
            "encrypt"
        ).observe(0.02)
        reg.gauge("repro_keys", "keys").set(3)
        families = parse_exposition(reg.expose())
        assert validate_families(families, require_naming=True) == []
