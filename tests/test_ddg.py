"""Exact DDG-tree analysis: the sampler's distribution proofs."""

from fractions import Fraction

import pytest

from repro.core.params import P1
from repro.sampler.ddg import (
    exact_magnitude_distribution,
    exact_output_distribution,
    level_profile,
    lut_failure_probability,
)
from repro.sampler.distribution import DiscreteGaussian
from repro.sampler.pmat import ProbabilityMatrix


@pytest.fixture(scope="module")
def pmat():
    return ProbabilityMatrix.for_params(P1)


@pytest.fixture(scope="module")
def toy():
    # Small, exactly-summing table for cheap exhaustive checks.
    return ProbabilityMatrix.from_table(
        DiscreteGaussian(sigma=1.2).half_table(precision=12, tail=6)
    )


class TestLevelProfile:
    def test_termination_sums_to_one(self, pmat):
        profile = level_profile(pmat)
        assert sum(profile.termination) == Fraction(1)

    def test_tree_completes(self, pmat):
        profile = level_profile(pmat)
        assert profile.internal_nodes[-1] == 0

    def test_internal_nodes_never_negative(self, pmat):
        profile = level_profile(pmat)
        assert all(n >= 0 for n in profile.internal_nodes)

    def test_fig2_anchors(self, pmat):
        acc = level_profile(pmat).accumulated_floats()
        assert acc[7] == pytest.approx(0.9727, abs=5e-4)  # level 8
        assert acc[12] == pytest.approx(0.9987, abs=5e-4)  # level 13

    def test_expected_level_small(self, pmat):
        # The paper's efficiency rests on the walk being ~4-5 levels.
        expected = level_profile(pmat).expected_level()
        assert 4.0 < expected < 5.0

    def test_toy_profile(self, toy):
        profile = level_profile(toy)
        assert sum(profile.termination) == Fraction(1)
        assert profile.internal_nodes[-1] == 0


class TestExactDistributions:
    def test_magnitude_distribution_equals_table(self, pmat):
        dist = exact_magnitude_distribution(pmat)
        for row in range(pmat.rows):
            assert dist[row] == pmat.table.probability(row)

    def test_output_distribution_sums_to_one(self, toy):
        out = exact_output_distribution(toy, q=97)
        assert sum(out.values()) == Fraction(1)

    def test_output_distribution_signs(self, toy):
        out = exact_output_distribution(toy, q=97)
        for row in range(1, toy.rows):
            prob = toy.table.probability(row)
            if prob == 0:
                continue
            assert out[row] == prob / 2
            assert out[97 - row] == prob / 2

    def test_output_distribution_zero_not_halved(self, toy):
        out = exact_output_distribution(toy, q=97)
        assert out[0] == toy.table.probability(0)


class TestLutFailureProbability:
    def test_paper_level8_value(self, pmat):
        # 1 - 97.27% = 2.73% of walks survive 8 levels.
        assert float(lut_failure_probability(pmat, 8)) == pytest.approx(
            0.0273, abs=5e-4
        )

    def test_monotone_in_levels(self, pmat):
        probs = [lut_failure_probability(pmat, L) for L in range(1, 20)]
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_zero_levels_means_certain_failure(self, pmat):
        assert lut_failure_probability(pmat, 0) == Fraction(1)

    def test_all_levels_means_no_failure(self, pmat):
        assert lut_failure_probability(pmat, pmat.columns) == Fraction(0)


class TestMalformedTree:
    def test_overweight_column_detected(self):
        # Force a table whose first column claims more terminals than
        # the single walk state available: probabilities >= 1/2 twice.
        from repro.sampler.distribution import HalfGaussianTable

        bad = HalfGaussianTable(
            sigma=1.0, precision=4, probabilities=(8, 8, 8)
        )
        pm = ProbabilityMatrix.from_table(bad)
        with pytest.raises(ValueError):
            level_profile(pm)
