"""Unit and property tests for repro.modmath."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.modmath import (
    barrett_constant,
    bit_length_of_coefficients,
    find_generator,
    is_prime,
    is_primitive_root_of_unity,
    modinv,
    modpow,
    prime_factors,
    root_of_unity,
)

PRIMES = [2, 3, 5, 7, 97, 257, 7681, 12289, 65537]
COMPOSITES = [1, 4, 6, 9, 15, 91, 7680, 12288, 7681 * 12289]


class TestPrimality:
    @pytest.mark.parametrize("p", PRIMES)
    def test_primes_detected(self, p):
        assert is_prime(p)

    @pytest.mark.parametrize("n", COMPOSITES)
    def test_composites_rejected(self, n):
        assert not is_prime(n)

    def test_zero_and_negative(self):
        assert not is_prime(0)
        assert not is_prime(-7)

    @given(st.integers(min_value=2, max_value=100_000))
    @settings(max_examples=200)
    def test_matches_trial_division(self, n):
        naive = n > 1 and all(n % d for d in range(2, int(n**0.5) + 1))
        assert is_prime(n) == naive


class TestFactorisation:
    def test_known_factorisations(self):
        assert prime_factors(7680) == [2, 3, 5]
        assert prime_factors(12288) == [2, 3]
        assert prime_factors(97) == [97]
        assert prime_factors(1) == []

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            prime_factors(0)

    @given(st.integers(min_value=2, max_value=50_000))
    @settings(max_examples=100)
    def test_factors_divide_and_are_prime(self, n):
        for p in prime_factors(n):
            assert n % p == 0
            assert is_prime(p)


class TestModInverse:
    @pytest.mark.parametrize("q", [97, 7681, 12289])
    def test_inverse_roundtrip(self, q):
        for value in (1, 2, 3, q - 1, q // 2):
            assert value * modinv(value, q) % q == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ValueError):
            modinv(0, 7681)

    def test_non_coprime_rejected(self):
        with pytest.raises(ValueError):
            modinv(6, 12)

    @given(st.integers(min_value=1, max_value=7680))
    @settings(max_examples=100)
    def test_inverse_property_mod_7681(self, value):
        assert value * modinv(value, 7681) % 7681 == 1


class TestModPow:
    def test_matches_builtin(self):
        assert modpow(3, 100, 7681) == pow(3, 100, 7681)

    def test_negative_base_normalised(self):
        assert modpow(-1, 2, 97) == 1

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            modpow(2, 3, 0)


class TestGeneratorsAndRoots:
    @pytest.mark.parametrize("q", [7681, 12289, 97, 257])
    def test_generator_has_full_order(self, q):
        g = find_generator(q)
        seen = set()
        value = 1
        # Spot-check with the defining property instead of enumerating.
        for p in prime_factors(q - 1):
            assert pow(g, (q - 1) // p, q) != 1
        assert pow(g, q - 1, q) == 1
        del seen, value

    def test_generator_requires_prime(self):
        with pytest.raises(ValueError):
            find_generator(7680)

    @pytest.mark.parametrize(
        "order,q", [(512, 7681), (1024, 12289), (32, 97), (16, 17)]
    )
    def test_root_of_unity_is_primitive(self, order, q):
        w = root_of_unity(order, q)
        assert is_primitive_root_of_unity(w, order, q)
        assert pow(w, order, q) == 1
        assert pow(w, order // 2, q) == q - 1  # half power must be -1

    def test_root_of_unity_divisibility_check(self):
        with pytest.raises(ValueError):
            root_of_unity(512, 12289 + 2)  # not prime, and 512 !| q-1
        with pytest.raises(ValueError):
            root_of_unity(7, 7681)

    def test_nonprimitive_root_detected(self):
        # 1 is an order-1 root, never a primitive order-4 root.
        assert not is_primitive_root_of_unity(1, 4, 97)


class TestBarrettConstant:
    @pytest.mark.parametrize("q", [7681, 12289])
    def test_value(self, q):
        assert barrett_constant(q) == (1 << 32) // q

    def test_rejects_oversized_modulus(self):
        with pytest.raises(ValueError):
            barrett_constant(1 << 17, width=32)  # (q-1)^2 >= 2^32

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            barrett_constant(0)


class TestCoefficientBits:
    @pytest.mark.parametrize("q,bits", [(7681, 13), (12289, 14), (97, 7)])
    def test_widths(self, q, bits):
        assert bit_length_of_coefficients(q) == bits
