"""The execution-engine layer: batch containers, OpRunner, worker pool.

Covers the worker-IPC encodings (strict, pickle-free), the shared
body-in/body-out compute core, inline-vs-pool bit-identity, sharding,
and graceful degradation when a worker is killed mid-flight.

asyncio tests run through ``asyncio.run`` (no pytest-asyncio).  Pool
tests spawn real worker subprocesses; they are kept small because CI
may offer a single core.
"""

import asyncio
import os
import signal

import pytest

from repro import P1, P2, seeded_scheme
from repro.core import serialize
from repro.service import protocol
from repro.service.client import RlweServiceClient
from repro.service.executor import (
    InlineExecutor,
    OpRunner,
    WorkerPoolExecutor,
    decode_worker_config,
    encode_worker_config,
    pool_executor_for,
)
from repro.service.protocol import (
    OP_DECRYPT,
    OP_ENCAPSULATE,
    OP_ENCRYPT,
    OP_PING,
    STATUS_BAD_REQUEST,
    STATUS_INTERNAL_ERROR,
    STATUS_OK,
    ServiceError,
)
from repro.service.server import start_server


def run(coro):
    return asyncio.run(coro)


def _scheme(seed=1234):
    return seeded_scheme(P1, seed=seed)


def _keypair_and_scheme(key_seed=77, rng_seed=901):
    """A keypair from its own scheme, plus a fresh serving scheme.

    Keeping keygen off the serving scheme's randomness stream is what
    lets a pool worker (which seeds its own stream with ``rng_seed``)
    replay the inline server's stream exactly.
    """
    keypair = seeded_scheme(P1, seed=key_seed).generate_keypair()
    return keypair, seeded_scheme(P1, seed=rng_seed)


# ----------------------------------------------------------------------
# Batch containers (worker IPC encodings)
# ----------------------------------------------------------------------
class TestBatchContainers:
    def test_batch_roundtrip(self):
        bodies = [b"", b"a", b"x" * 1000, bytes(range(256))]
        assert protocol.decode_batch(protocol.encode_batch(bodies)) == bodies

    def test_empty_batch_roundtrip(self):
        assert protocol.decode_batch(protocol.encode_batch([])) == []

    def test_batch_trailing_garbage_rejected(self):
        payload = protocol.encode_batch([b"ok"])
        with pytest.raises(ValueError):
            protocol.decode_batch(payload + b"J")

    def test_batch_truncation_rejected(self):
        payload = protocol.encode_batch([b"hello", b"world"])
        for cut in range(len(payload) - 1, 3, -1):
            with pytest.raises(ValueError):
                protocol.decode_batch(payload[:cut])

    def test_batch_hostile_count_rejected(self):
        # Count claims 100 items, payload carries none.
        with pytest.raises(ValueError):
            protocol.decode_batch(b"\x00\x00\x00\x64")

    def test_batch_hostile_item_length_rejected(self):
        with pytest.raises(ValueError):
            protocol.decode_batch(
                b"\x00\x00\x00\x01" + b"\xff\xff\xff\xff" + b"xx"
            )

    def test_result_batch_roundtrip(self):
        results = [
            (STATUS_OK, b"body"),
            (STATUS_BAD_REQUEST, b"oops"),
            (STATUS_OK, b""),
        ]
        assert (
            protocol.decode_result_batch(
                protocol.encode_result_batch(results)
            )
            == results
        )

    def test_result_batch_status_range_checked(self):
        with pytest.raises(ValueError):
            protocol.encode_result_batch([(256, b"")])

    def test_result_batch_trailing_garbage_rejected(self):
        payload = protocol.encode_result_batch([(STATUS_OK, b"ok")])
        with pytest.raises(ValueError):
            protocol.decode_result_batch(payload + b"!")

    def test_oversized_batch_rejected(self):
        with pytest.raises(ValueError):
            protocol.encode_batch([b"x" * 2048], max_frame=1024)
        with pytest.raises(ValueError):
            protocol.encode_result_batch(
                [(STATUS_OK, b"x" * 2048)], max_frame=1024
            )

    def test_ipc_frames_carry_large_batches(self):
        # A full P4-sized coalesced window (way past the public socket's
        # 1 MiB cap) must round-trip on the IPC limit.
        bodies = [b"x" * 8300] * 256
        payload = protocol.encode_batch(bodies)
        assert len(payload) > protocol.MAX_FRAME_BYTES
        frame = protocol.encode_request(
            protocol.Request(1, OP_ENCRYPT, payload),
            protocol.IPC_MAX_FRAME_BYTES,
        )
        with pytest.raises(ValueError):
            protocol.encode_request(protocol.Request(1, OP_ENCRYPT, payload))
        decoded = protocol.decode_request(frame[4:])
        assert protocol.decode_batch(decoded.body) == bodies


class TestWorkerConfig:
    def test_roundtrip(self):
        pair = _scheme().generate_keypair()
        public_bytes, private_bytes = serialize.serialize_keypair(pair)
        payload = encode_worker_config(
            public_bytes,
            private_bytes,
            seed=42,
            backend="python-reference",
            direct=True,
        )
        config = decode_worker_config(payload)
        assert config["seed"] == 42
        assert config["backend"] == "python-reference"
        assert config["direct"] is True
        assert config["keypair"].public == pair.public
        assert config["keypair"].private == pair.private

    def test_default_backend_is_none(self):
        pair = _scheme().generate_keypair()
        public_bytes, private_bytes = serialize.serialize_keypair(pair)
        payload = encode_worker_config(
            public_bytes, private_bytes, seed=0, backend=None, direct=False
        )
        config = decode_worker_config(payload)
        assert config["backend"] is None
        assert config["direct"] is False

    def test_mixed_parameter_sets_rejected(self):
        p1 = seeded_scheme(P1, seed=1).generate_keypair()
        p2 = seeded_scheme(P2, seed=1).generate_keypair()
        public_bytes, _ = serialize.serialize_keypair(p1)
        _, private_bytes = serialize.serialize_keypair(p2)
        payload = encode_worker_config(
            public_bytes, private_bytes, seed=0, backend=None, direct=False
        )
        with pytest.raises(ValueError):
            decode_worker_config(payload)

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            decode_worker_config(b"garbage")
        with pytest.raises(ValueError):
            decode_worker_config(protocol.encode_batch([b"one", b"two"]))

    def test_serving_seed_domain_separated(self):
        from repro.service.executor import _mix32, serving_seed

        # Keygen stream S and serving stream serving_seed(S) must
        # differ for every base we can cheaply sweep, land in the
        # TRNG's 32-bit seed space, and be injective over the sweep.
        seeds = list(range(4096)) + [2**31, 2**32 - 1]
        derived = [serving_seed(s) for s in seeds]
        assert all(0 <= d < 2**32 for d in derived)
        assert all(d != (s & 0xFFFFFFFF) for s, d in zip(seeds, derived))
        assert len(set(derived)) == len(seeds)
        # Non-linear: related bases must not map to related streams
        # (the defect a plain +delta would have).
        assert serving_seed(1) - serving_seed(0) not in (-1, 0, 1)
        # _mix32 is bijective on 32 bits (sampled), the property the
        # per-shard derivation's uniqueness relies on.
        sample = [_mix32(v) for v in range(8192)]
        assert len(set(sample)) == 8192


# ----------------------------------------------------------------------
# Serialize-layer peek validators
# ----------------------------------------------------------------------
class TestPeekValidators:
    def test_peek_matches_deserialize(self):
        scheme = _scheme()
        pair = scheme.generate_keypair()
        ct = serialize.serialize_ciphertext(
            scheme.encrypt(pair.public, b"peek")
        )
        assert serialize.peek_ciphertext_params(ct) is P1
        # Trailing garbage and truncation rejected like the full parser
        with pytest.raises(ValueError):
            serialize.peek_ciphertext_params(ct + b"J")
        with pytest.raises(ValueError):
            serialize.peek_ciphertext_params(ct[:-1])
        with pytest.raises(ValueError):
            serialize.peek_ciphertext_params(b"not a ciphertext")

    def test_peek_encapsulation(self):
        from repro.core.kem import RlweKem

        scheme = _scheme()
        pair = scheme.generate_keypair()
        cap, _ = RlweKem(scheme).encapsulate(pair.public)
        data = serialize.serialize_encapsulation(cap)
        assert serialize.peek_encapsulation_params(data) is P1
        with pytest.raises(ValueError):
            serialize.peek_encapsulation_params(data[:-1])
        with pytest.raises(ValueError):
            serialize.peek_encapsulation_params(data + b"x")


# ----------------------------------------------------------------------
# OpRunner (shared compute core)
# ----------------------------------------------------------------------
class TestOpRunner:
    def test_bad_item_does_not_poison_batch(self):
        scheme = _scheme()
        pair = scheme.generate_keypair()
        runner = OpRunner(scheme, pair)
        good = serialize.serialize_ciphertext(
            scheme.encrypt(pair.public, b"good")
        )
        results = runner.run(OP_DECRYPT, [good, b"garbage", good + b"!"])
        assert results[0][0] == STATUS_OK
        assert results[0][1].startswith(b"good")
        assert results[1][0] == STATUS_BAD_REQUEST
        assert results[2][0] == STATUS_BAD_REQUEST

    def test_direct_and_batched_paths_agree(self):
        # The two paths consume randomness differently (block sampler
        # vs per-message sampling), so ciphertext bytes differ — but
        # both must round-trip every message.
        pair = seeded_scheme(P1, seed=5).generate_keypair()
        batched = OpRunner(seeded_scheme(P1, seed=9), pair)
        direct = OpRunner(seeded_scheme(P1, seed=9), pair, direct=True)
        bodies = [bytes([i]) * 16 for i in range(4)]
        for runner in (batched, direct):
            cts = runner.run(OP_ENCRYPT, bodies)
            assert all(status == STATUS_OK for status, _ in cts)
            plains = runner.run(OP_DECRYPT, [body for _, body in cts])
            assert [p[:16] for _, p in plains] == bodies

    def test_unknown_opcode_rejected(self):
        scheme = _scheme()
        runner = OpRunner(scheme, scheme.generate_keypair())
        with pytest.raises(ValueError):
            runner.run(99, [b""])

    def test_inline_executor_counts(self):
        async def scenario():
            scheme = _scheme()
            executor = InlineExecutor(
                OpRunner(scheme, scheme.generate_keypair())
            )
            results = await executor.run_batch(
                OP_ENCRYPT, [b"a", b"b", b"c"]
            )
            assert len(results) == 3
            assert all(isinstance(r, bytes) for r in results)
            stats = executor.stats()
            assert stats["kind"] == "inline"
            assert stats["batches"] == 1 and stats["items"] == 3
            # Oversized message surfaces as a per-item ServiceError
            results = await executor.run_batch(
                OP_ENCRYPT, [b"x" * (P1.message_bytes + 1)]
            )
            assert isinstance(results[0], ServiceError)
            assert results[0].status == STATUS_BAD_REQUEST

        run(scenario())


# ----------------------------------------------------------------------
# Worker pool
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_pool_end_to_end_and_sharding(self):
        async def scenario():
            keypair, scheme = _keypair_and_scheme()
            executor = pool_executor_for(
                scheme, keypair, seed=901, workers=2
            )
            server = await start_server(
                scheme,
                keypair=keypair,
                executor=executor,
                max_batch=4,
                max_wait=0.002,
            )
            async with await RlweServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                messages = [bytes([i]) * 4 for i in range(12)]
                cts = await asyncio.gather(
                    *(client.encrypt(m) for m in messages)
                )
                plains = await asyncio.gather(
                    *(client.decrypt(ct, length=4) for ct in cts)
                )
                assert plains == messages
                key, cap = await client.encapsulate()
                assert await client.decapsulate(cap) == key
                stats = await client.stats()
            await server.close()
            return stats

        stats = run(scenario())
        executor = stats["executor"]
        assert executor["kind"] == "pool"
        assert executor["workers"] == 2
        assert executor["respawns"] == 0
        # 12 encrypts in 4-wide windows: batches really sharded across
        # both workers.
        assert sum(s["items"] for s in executor["shards"]) >= 25
        assert all(s["alive"] for s in executor["shards"])

    def test_pool_of_one_bit_identical_to_inline(self):
        async def run_requests(use_pool):
            keypair, scheme = _keypair_and_scheme()
            executor = (
                pool_executor_for(scheme, keypair, seed=901, workers=1)
                if use_pool
                else None
            )
            server = await start_server(
                scheme,
                keypair=keypair,
                executor=executor,
                max_batch=8,
                max_wait=0.001,
            )
            wire_values = []
            async with await RlweServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                wire_values.append(await client.get_public_key())
                # Serial requests: the flush order, and therefore the
                # deterministic randomness stream, is identical run to
                # run.
                for i in range(5):
                    ct = await client.encrypt(bytes([i]) * 8)
                    wire_values.append(ct)
                    wire_values.append(await client.decrypt(ct))
                for _ in range(3):
                    key, cap = await client.encapsulate()
                    wire_values.append(key)
                    wire_values.append(cap)
                    try:
                        wire_values.append(await client.decapsulate(cap))
                    except ServiceError as exc:
                        # A genuine CPA decryption failure must be
                        # byte-identical too.
                        wire_values.append((exc.status, str(exc)))
            await server.close()
            return wire_values

        async def scenario():
            inline = await run_requests(False)
            pooled = await run_requests(True)
            return inline, pooled

        inline, pooled = run(scenario())
        assert len(inline) == 20
        assert inline == pooled

    def test_worker_killed_mid_flight(self, monkeypatch):
        # Workers inherit our environment; the sleep hook is inert
        # unless this is set.
        monkeypatch.setenv("REPRO_WORKER_FAULT_HOOKS", "1")

        async def scenario():
            keypair, scheme = _keypair_and_scheme()
            executor = pool_executor_for(
                scheme, keypair, seed=901, workers=2
            )
            await executor.start()
            try:
                # Batch 1 parks on one worker (the sleep hook keeps it
                # mid-flight); batch 2 lands on the other.
                stuck = asyncio.ensure_future(
                    executor.run_batch(OP_PING, [b"sleep:30"])
                )
                for _ in range(200):
                    await asyncio.sleep(0.01)
                    busy = [
                        s
                        for s in executor.stats()["shards"]
                        if s["outstanding_items"] > 0
                    ]
                    if busy:
                        break
                assert busy, "sleep batch never dispatched"
                victim_pid = busy[0]["pid"]

                os.kill(victim_pid, signal.SIGKILL)

                # The killed worker's batch fails with a uniform
                # ServiceError...
                with pytest.raises(ServiceError) as excinfo:
                    await stuck
                assert excinfo.value.status == STATUS_INTERNAL_ERROR
                assert "died" in str(excinfo.value)

                # ...while the surviving worker keeps serving.
                assert await executor.run_batch(OP_PING, [b"alive"]) == [
                    b"alive"
                ]

                # The pool respawns the dead shard.
                for _ in range(600):
                    if executor.alive_workers() == 2:
                        break
                    await asyncio.sleep(0.05)
                assert executor.alive_workers() == 2
                assert executor.stats()["respawns"] == 1
                assert victim_pid not in executor.worker_pids()

                # Both shards (including the respawn) serve crypto.
                results = await asyncio.gather(
                    executor.run_batch(OP_ENCRYPT, [b"one"]),
                    executor.run_batch(OP_ENCRYPT, [b"two"]),
                )
                for batch in results:
                    assert isinstance(batch[0], bytes)
            finally:
                await executor.close()

        run(scenario())

    def test_shards_use_distinct_randomness_streams(self):
        # Two sequential single-item batches land on different shards
        # (round-robin tie-break).  If both shards replayed the same
        # seed, two clients would receive identical "fresh" session
        # keys — the streams must diverge per shard.
        async def scenario():
            keypair, scheme = _keypair_and_scheme()
            executor = pool_executor_for(
                scheme, keypair, seed=901, workers=2
            )
            await executor.start()
            try:
                first = await executor.run_batch(OP_ENCAPSULATE, [b""])
                second = await executor.run_batch(OP_ENCAPSULATE, [b""])
                assert isinstance(first[0], bytes)
                assert isinstance(second[0], bytes)
                assert first[0] != second[0]
                shards = executor.stats()["shards"]
                assert [s["items"] for s in shards] == [1, 1]
            finally:
                await executor.close()

        run(scenario())

    def test_wedged_worker_times_out_and_respawns(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKER_FAULT_HOOKS", "1")

        async def scenario():
            keypair, scheme = _keypair_and_scheme()
            executor = pool_executor_for(
                scheme, keypair, seed=901, workers=1, job_timeout=0.5
            )
            await executor.start()
            try:
                wedged_pid = executor.worker_pids()[0]
                # Alive but stuck far past the job timeout: the batch
                # must err fast and the shard must be killed+respawned,
                # not hang the caller.
                with pytest.raises(ServiceError) as excinfo:
                    await executor.run_batch(OP_PING, [b"sleep:60"])
                assert "did not answer" in str(excinfo.value)
                for _ in range(600):
                    pids = executor.worker_pids()
                    if (
                        executor.alive_workers() == 1
                        and pids[0] not in (None, wedged_pid)
                    ):
                        break
                    await asyncio.sleep(0.05)
                assert executor.alive_workers() == 1
                assert executor.worker_pids()[0] != wedged_pid
                assert await executor.run_batch(OP_PING, [b"ok"]) == [
                    b"ok"
                ]
            finally:
                await executor.close()

        run(scenario())

    def test_closed_pool_rejects_batches(self):
        async def scenario():
            keypair, scheme = _keypair_and_scheme()
            executor = pool_executor_for(
                scheme, keypair, seed=901, workers=1
            )
            await executor.start()
            await executor.close()
            with pytest.raises(ServiceError):
                await executor.run_batch(OP_PING, [b"late"])

        run(scenario())

    def test_workers_validated(self):
        keypair, scheme = _keypair_and_scheme()
        with pytest.raises(ValueError):
            pool_executor_for(scheme, keypair, workers=0)
