"""The RlweSession facade: engines, lifecycle, errors, sync/async parity.

Transport-crossing behavior (the local/pool/tcp bit-identity matrix and
exception parity) lives in ``test_facade_transports.py``; this module
covers the facade's own contract on the cheap local engine.
"""

import asyncio

import pytest

from repro import P1, P2, custom_parameter_set, seeded_scheme
from repro.api import (
    AsyncRlweSession,
    CapacityError,
    DecryptionError,
    EngineUnavailableError,
    RemoteError,
    RlweError,
    RlweSession,
    SessionClosedError,
    WireFormatError,
    error_from_status,
    parse_engine,
)
from repro.core import serialize
from repro.core.kem import RlweKem
from repro.service.protocol import (
    STATUS_BAD_REQUEST,
    STATUS_DECAPSULATION_FAILED,
    STATUS_INTERNAL_ERROR,
    STATUS_OK,
)


# ----------------------------------------------------------------------
# Engine strings
# ----------------------------------------------------------------------
class TestEngineParsing:
    def test_local(self):
        spec = parse_engine("local")
        assert spec.kind == "local"
        assert spec.label == "local"

    def test_pool_with_count(self):
        spec = parse_engine("pool:3")
        assert (spec.kind, spec.workers) == ("pool", 3)
        assert spec.label == "pool:3"

    def test_pool_defaults_to_cpu_count(self):
        assert parse_engine("pool").workers >= 1

    def test_remote(self):
        spec = parse_engine("tcp://example.org:8470")
        assert (spec.kind, spec.host, spec.port) == (
            "remote",
            "example.org",
            8470,
        )
        assert spec.label == "tcp://example.org:8470"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "  ",
            "warp",
            "pool:0",
            "pool:-1",
            "pool:two",
            "tcp://",
            "tcp://hostonly",
            "tcp://host:notaport",
            "tcp://host:0",
            "tcp://host:70000",
            "udp://host:1",
        ],
    )
    def test_bad_engine_strings(self, bad):
        with pytest.raises(EngineUnavailableError):
            parse_engine(bad)

    def test_open_with_bad_engine_string(self):
        with pytest.raises(EngineUnavailableError):
            RlweSession.open("warp-drive", params=P1)


# ----------------------------------------------------------------------
# Status -> typed exception classification
# ----------------------------------------------------------------------
class TestErrorClassification:
    def test_decapsulation_failure(self):
        exc = error_from_status(STATUS_DECAPSULATION_FAILED, "tag rejected")
        assert isinstance(exc, DecryptionError)

    def test_bad_request_parse_failure(self):
        exc = error_from_status(STATUS_BAD_REQUEST, "bad magic b'XXXX'")
        assert isinstance(exc, WireFormatError)
        assert isinstance(exc, ValueError)  # serialize-layer compatible

    def test_bad_request_capacity(self):
        exc = error_from_status(
            STATUS_BAD_REQUEST,
            "message of 99 bytes exceeds the 32-byte capacity of P1",
        )
        assert isinstance(exc, CapacityError)

    def test_bad_request_kem_capability(self):
        exc = error_from_status(
            STATUS_BAD_REQUEST,
            "P3 carries 16 bytes per ciphertext; the KEM needs 32",
        )
        assert isinstance(exc, CapacityError)

    def test_internal_engine_gone(self):
        for message in (
            "worker 0 (pid 7) died mid-batch; the request was not completed",
            "no live workers in the pool",
            "executor is shutting down",
        ):
            exc = error_from_status(STATUS_INTERNAL_ERROR, message)
            assert isinstance(exc, EngineUnavailableError), message

    def test_internal_catchall(self):
        exc = error_from_status(STATUS_INTERNAL_ERROR, "TypeError: boom")
        assert isinstance(exc, RemoteError)
        assert exc.status == STATUS_INTERNAL_ERROR

    def test_unknown_status(self):
        exc = error_from_status(42, "martian response")
        assert isinstance(exc, RemoteError)

    def test_everything_is_rlwe_error(self):
        for status, message in [
            (STATUS_BAD_REQUEST, "x"),
            (STATUS_DECAPSULATION_FAILED, "x"),
            (STATUS_INTERNAL_ERROR, "x"),
            (STATUS_OK + 99, "x"),
        ]:
            assert isinstance(error_from_status(status, message), RlweError)


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_double_close_is_idempotent(self):
        session = RlweSession.open("local", params=P1, seed=5)
        session.close()
        session.close()
        assert session.closed

    def test_use_after_close_raises(self):
        session = RlweSession.open("local", params=P1, seed=5)
        session.close()
        with pytest.raises(SessionClosedError):
            session.encrypt(b"late")
        with pytest.raises(SessionClosedError):
            session.keygen()
        with pytest.raises(SessionClosedError):
            session.stats()

    def test_context_manager(self):
        with RlweSession.open("local", params=P1, seed=5) as session:
            assert session.decrypt(session.encrypt(b"cm"), length=2) == b"cm"
        assert session.closed

    def test_async_lifecycle(self):
        async def main():
            async with await AsyncRlweSession.open(
                "local", params=P1, seed=5
            ) as session:
                ct = await session.encrypt(b"hi")
                assert await session.decrypt(ct, length=2) == b"hi"
            assert session.closed
            await session.aclose()  # double close
            with pytest.raises(SessionClosedError):
                await session.encrypt(b"late")

        asyncio.run(main())

    def test_remote_open_refused_connection(self):
        # Port 1 on localhost is essentially never listening.
        with pytest.raises(EngineUnavailableError):
            RlweSession.open("tcp://127.0.0.1:1")


# ----------------------------------------------------------------------
# Local-engine operations
# ----------------------------------------------------------------------
class TestLocalOps:
    def test_scalar_roundtrip_and_wire_currency(self):
        with RlweSession.open("local", params=P1, seed=9) as session:
            ct = session.encrypt(b"facade")
            # The ciphertext is genuine wire format.
            obj = serialize.deserialize_ciphertext(ct)
            assert obj.params == P1
            assert session.decrypt(ct, length=6) == b"facade"

    def test_batch_roundtrip_and_empty_batches(self):
        with RlweSession.open("local", params=P1, seed=9) as session:
            messages = [bytes([i]) * 4 for i in range(5)]
            cts = session.encrypt_many(messages)
            assert session.decrypt_many(cts, length=4) == messages
            assert session.encrypt_many([]) == []
            assert session.decrypt_many([]) == []
            assert session.encapsulate_many(0) == []
            assert session.decapsulate_many([]) == []

    def test_kem_roundtrip(self):
        with RlweSession.open("local", params=P1, seed=9) as session:
            key, cap = session.encapsulate()
            assert len(key) == 32
            assert session.decapsulate(cap) == key
            pairs = session.encapsulate_many(3)
            keys = session.decapsulate_many([cap for _, cap in pairs])
            assert keys == [key for key, _ in pairs]

    def test_capacity_error(self):
        with RlweSession.open("local", params=P1, seed=9) as session:
            with pytest.raises(CapacityError):
                session.encrypt(b"z" * (P1.message_bytes + 1))
            with pytest.raises(CapacityError):
                session.encrypt_many([b"ok", b"z" * 999])

    def test_kem_needs_capacity(self):
        # A 128-coefficient set carries 16-byte blocks — smaller than a
        # 32-byte session key, so the KEM capability check trips.
        tiny = custom_parameter_set(128, 3329, 11.32)
        assert tiny.message_bytes < 32
        with RlweSession.open("local", params=tiny, seed=9) as session:
            with pytest.raises(CapacityError):
                session.encapsulate()
            with pytest.raises(CapacityError):
                session.decapsulate(b"\x00" * 64)

    def test_wire_format_error(self):
        with RlweSession.open("local", params=P1, seed=9) as session:
            ct = session.encrypt(b"ok")
            with pytest.raises(WireFormatError):
                session.decrypt(ct[:-3])
            with pytest.raises(WireFormatError):
                session.decrypt(ct + b"trailing")

    def test_params_mismatch_is_wire_format_error(self):
        with RlweSession.open("local", params=P1, seed=9) as session:
            other = seeded_scheme(P2, seed=1)
            keys = other.generate_keypair()
            foreign = serialize.serialize_ciphertext(
                other.encrypt(keys.public, b"p2")
            )
            with pytest.raises(WireFormatError):
                session.decrypt(foreign)

    def test_decryption_error_on_tampered_encapsulation(self):
        with RlweSession.open("local", params=P1, seed=9) as session:
            _, cap = session.encapsulate()
            tampered = cap[:-1] + bytes([cap[-1] ^ 1])
            with pytest.raises(DecryptionError):
                session.decapsulate(tampered)

    def test_decrypt_length_validation(self):
        with RlweSession.open("local", params=P1, seed=9) as session:
            ct = session.encrypt(b"ok")
            with pytest.raises(ValueError):
                session.decrypt(ct, length=-1)
            with pytest.raises(ValueError):
                session.decrypt(ct, length=P1.message_bytes + 1)

    def test_keygen_and_key_normalization(self):
        with RlweSession.open("local", params=P1, seed=9) as session:
            public = session.keygen()
            assert public is session.public_key
            assert (
                serialize.deserialize_public_key(session.public_key_bytes)
                == public
            )
            # External parties can encrypt to the session key.
            other = seeded_scheme(P1, seed=1000)
            ct = serialize.serialize_ciphertext(
                other.encrypt(public, b"from outside")
            )
            assert session.decrypt(ct, length=12) == b"from outside"

    def test_stats_shape(self):
        with RlweSession.open("local", params=P1, seed=9) as session:
            session.encrypt_many([b"a", b"b"])
            session.encapsulate()
            stats = session.stats()
            assert stats["engine"] == "local"
            assert stats["ops"]["encrypt"] == 2
            assert stats["ops"]["encapsulate"] == 1
            assert stats["transport"]["kind"] == "local"
            assert stats["transport"]["items"] == 3

    def test_remote_decapsulation_keys_match_kem(self):
        # The facade's decapsulate agrees with the raw KEM objects.
        with RlweSession.open("local", params=P1, seed=9) as session:
            fixture = seeded_scheme(P1, seed=4321)
            kem = RlweKem(fixture)
            cap, secret = kem.encapsulate(session.public_key)
            assert (
                session.decapsulate(serialize.serialize_encapsulation(cap))
                == secret.key
            )


# ----------------------------------------------------------------------
# Sync/async parity
# ----------------------------------------------------------------------
class TestSyncAsyncParity:
    def test_same_bytes_from_both_flavors(self):
        with RlweSession.open("local", params=P1, seed=77) as sync_session:
            sync_ct = sync_session.encrypt(b"parity")
            sync_batch = sync_session.encrypt_many([b"a", b"b"])
            sync_key, sync_cap = sync_session.encapsulate()

        async def async_run():
            async with await AsyncRlweSession.open(
                "local", params=P1, seed=77
            ) as session:
                ct = await session.encrypt(b"parity")
                batch = await session.encrypt_many([b"a", b"b"])
                key, cap = await session.encapsulate()
                return ct, batch, key, cap

        async_ct, async_batch, async_key, async_cap = asyncio.run(
            async_run()
        )
        assert async_ct == sync_ct
        assert async_batch == sync_batch
        assert (async_key, async_cap) == (sync_key, sync_cap)

    def test_sync_exceptions_match_async_types(self):
        with RlweSession.open("local", params=P1, seed=77) as session:
            ct = session.encrypt(b"x")
            with pytest.raises(WireFormatError):
                session.decrypt(ct[:-1])

        async def async_raise():
            async with await AsyncRlweSession.open(
                "local", params=P1, seed=77
            ) as session:
                ct = await session.encrypt(b"x")
                with pytest.raises(WireFormatError):
                    await session.decrypt(ct[:-1])

        asyncio.run(async_raise())
