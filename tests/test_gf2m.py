"""GF(2^m) binary-field arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.gf2m import FIELD_5, FIELD_8, FIELD_233, BinaryField

element5 = st.integers(min_value=0, max_value=(1 << 5) - 1)
element233 = st.integers(min_value=0, max_value=(1 << 233) - 1)


class TestConstruction:
    def test_modulus_value(self):
        assert FIELD_233.modulus == (1 << 233) | (1 << 74) | 1

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            BinaryField(8, (7, 2, 0))  # degree != m
        with pytest.raises(ValueError):
            BinaryField(8, (8, 2))  # missing constant term
        with pytest.raises(ValueError):
            BinaryField(8, (8, 2, 2, 0))  # repeated exponent

    def test_order(self):
        assert FIELD_5.order == 32


class TestFieldAxiomsExhaustive:
    """GF(2^5) is small enough to check everything."""

    def test_addition_is_xor_group(self):
        f = FIELD_5
        for a in f.elements():
            assert f.add(a, a) == 0
            assert f.add(a, 0) == a

    def test_multiplication_associative_and_commutative(self):
        f = FIELD_5
        elements = list(f.elements())
        for a in elements[::3]:
            for b in elements[::3]:
                assert f.mul(a, b) == f.mul(b, a)
                for c in elements[::7]:
                    assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))

    def test_distributivity(self):
        f = FIELD_5
        elements = list(f.elements())
        for a in elements[::2]:
            for b in elements[::3]:
                for c in elements[::5]:
                    assert f.mul(a, f.add(b, c)) == f.add(
                        f.mul(a, b), f.mul(a, c)
                    )

    def test_every_nonzero_invertible(self):
        f = FIELD_5
        for a in range(1, 32):
            assert f.mul(a, f.inverse(a)) == 1

    def test_square_matches_self_multiplication(self):
        f = FIELD_5
        for a in f.elements():
            assert f.square(a) == f.mul(a, a)

    def test_frobenius_is_additive(self):
        f = FIELD_5
        for a in f.elements():
            for b in list(f.elements())[::3]:
                assert f.square(f.add(a, b)) == f.add(
                    f.square(a), f.square(b)
                )

    def test_trace_is_additive_and_balanced(self):
        f = FIELD_5
        traces = [f.trace(a) for a in f.elements()]
        assert all(t in (0, 1) for t in traces)
        assert sum(traces) == 16  # exactly half the elements

    def test_multiplicative_order_divides_31(self):
        f = FIELD_5
        for a in (2, 3, 7):
            assert f.pow(a, 31) == 1


class TestAesFieldKnownValues:
    def test_known_aes_product(self):
        # {0x53} * {0xCA} = {0x01} in the AES field.
        assert FIELD_8.mul(0x53, 0xCA) == 0x01

    def test_known_aes_inverse(self):
        assert FIELD_8.inverse(0x53) == 0xCA


class TestField233:
    @given(element233, element233)
    @settings(max_examples=30, deadline=None)
    def test_commutativity(self, a, b):
        assert FIELD_233.mul(a, b) == FIELD_233.mul(b, a)

    @given(element233)
    @settings(max_examples=30, deadline=None)
    def test_square_consistent(self, a):
        assert FIELD_233.square(a) == FIELD_233.mul(a, a)

    @given(element233.filter(lambda a: a != 0))
    @settings(max_examples=20, deadline=None)
    def test_inverse(self, a):
        assert FIELD_233.mul(a, FIELD_233.inverse(a)) == 1

    def test_fermat(self):
        # a^(2^233) = a for any a.
        a = 0x1234567890ABCDEF
        assert FIELD_233.pow(a, 1 << 233) == a

    def test_zero_inverse_rejected(self):
        with pytest.raises(ZeroDivisionError):
            FIELD_233.inverse(0)

    def test_element_range_checked(self):
        with pytest.raises(ValueError):
            FIELD_233.mul(1 << 233, 1)

    def test_large_field_enumeration_refused(self):
        with pytest.raises(ValueError):
            list(FIELD_233.elements())

    def test_division(self):
        a, b = 12345, 67890
        assert FIELD_233.mul(FIELD_233.div(a, b), b) == a
