"""ECIES cost estimate: calibration against the literature constant."""

import pytest

from repro.baselines.ecies import (
    ECIES_ENCRYPT_CYCLES_PAPER,
    M0PLUS_GF233,
    POINT_MULT_CYCLES_M0PLUS,
    FieldCostModel,
    ecies_decrypt_estimate,
    ecies_encrypt_estimate,
    point_multiplication_estimate,
)


class TestPointMultEstimate:
    @pytest.fixture(scope="class")
    def estimate(self):
        return point_multiplication_estimate()

    def test_matches_literature_within_5pct(self, estimate):
        assert abs(estimate.relative_error) < 0.05

    def test_field_op_profile(self, estimate):
        # 232 ladder iterations at 6 muls + 5 squares, plus setup and
        # the final normalisation.
        assert estimate.field_ops["mul"] == pytest.approx(
            232 * 6, rel=0.02
        )
        assert estimate.field_ops["square"] == pytest.approx(
            232 * 5, rel=0.02
        )
        assert estimate.field_ops["inverse"] == 1

    def test_full_width_scalar(self, estimate):
        assert estimate.scalar_bits == 233
        assert estimate.curve_name == "K-233"

    def test_deterministic(self):
        a = point_multiplication_estimate()
        b = point_multiplication_estimate()
        assert a.cycles == b.cycles


class TestEciesEstimates:
    def test_encrypt_is_two_point_mults(self):
        single = point_multiplication_estimate().cycles
        assert ecies_encrypt_estimate() == 2 * single

    def test_decrypt_is_one_point_mult(self):
        assert ecies_decrypt_estimate() == point_multiplication_estimate().cycles

    def test_paper_comparison_preserved(self):
        # Paper: ECIES encryption ~ 5,523,280 cycles, more than one
        # order of magnitude above the ring-LWE encryption.
        ours = ecies_encrypt_estimate()
        assert abs(ours - ECIES_ENCRYPT_CYCLES_PAPER) / ECIES_ENCRYPT_CYCLES_PAPER < 0.05
        assert ours > 10 * 121_166


class TestCostModel:
    def test_inverse_is_itoh_tsujii(self):
        model = FieldCostModel()
        assert model.inverse == 10 * model.mul + 232 * model.square

    def test_price_accounts_all_ops(self):
        model = FieldCostModel(mul=100, square=10, add=1, ladder_overhead=5)
        counts = {"mul": 2, "square": 3, "add": 4, "inverse": 0}
        assert model.price(counts, iterations=10) == 200 + 30 + 4 + 50

    def test_literature_constants(self):
        assert POINT_MULT_CYCLES_M0PLUS == 2_761_640
        assert ECIES_ENCRYPT_CYCLES_PAPER == 2 * POINT_MULT_CYCLES_M0PLUS
        assert M0PLUS_GF233.mul > M0PLUS_GF233.square
