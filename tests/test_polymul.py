"""NTT-based polynomial multiplication against the schoolbook oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import P1, P2
from repro.ntt.polymul import (
    ntt_implementation,
    ntt_multiply,
    pointwise_add,
    pointwise_multiply,
    pointwise_subtract,
    schoolbook_negacyclic,
)
from tests.conftest import SMALL


def poly():
    return st.lists(
        st.integers(min_value=0, max_value=SMALL.q - 1),
        min_size=SMALL.n,
        max_size=SMALL.n,
    )


class TestSchoolbookOracle:
    def test_multiply_by_one(self):
        one = [1] + [0] * (SMALL.n - 1)
        a = list(range(SMALL.n))
        assert schoolbook_negacyclic(a, one, SMALL) == [
            c % SMALL.q for c in a
        ]

    def test_x_times_x_to_n_minus_1_wraps_negatively(self):
        # x * x^(n-1) = x^n = -1 in the ring.
        x = [0, 1] + [0] * (SMALL.n - 2)
        xn1 = [0] * (SMALL.n - 1) + [1]
        expected = [(SMALL.q - 1)] + [0] * (SMALL.n - 1)
        assert schoolbook_negacyclic(x, xn1, SMALL) == expected

    @given(poly(), poly())
    @settings(max_examples=25, deadline=None)
    def test_commutativity(self, a, b):
        assert schoolbook_negacyclic(a, b, SMALL) == schoolbook_negacyclic(
            b, a, SMALL
        )


class TestNttMultiply:
    @given(poly(), poly())
    @settings(max_examples=30, deadline=None)
    def test_matches_schoolbook_reference_impl(self, a, b):
        assert ntt_multiply(a, b, SMALL) == schoolbook_negacyclic(a, b, SMALL)

    @given(poly(), poly())
    @settings(max_examples=30, deadline=None)
    def test_matches_schoolbook_packed_impl(self, a, b):
        assert ntt_multiply(a, b, SMALL, "packed") == schoolbook_negacyclic(
            a, b, SMALL
        )

    @pytest.mark.parametrize("params", [P1, P2], ids=["P1", "P2"])
    @pytest.mark.parametrize("impl", ["reference", "packed"])
    def test_paper_params(self, params, impl, poly_factory):
        a, b = poly_factory(params), poly_factory(params)
        assert ntt_multiply(a, b, params, impl) == schoolbook_negacyclic(
            a, b, params
        )

    def test_unknown_implementation(self):
        with pytest.raises(KeyError):
            ntt_implementation("simd")


class TestPointwiseOps:
    @given(poly(), poly())
    @settings(max_examples=25, deadline=None)
    def test_add_sub_inverse(self, a, b):
        summed = pointwise_add(a, b, SMALL)
        assert pointwise_subtract(summed, b, SMALL) == [
            c % SMALL.q for c in a
        ]

    def test_multiply_values(self):
        a = [2] * SMALL.n
        b = [50] * SMALL.n
        assert pointwise_multiply(a, b, SMALL) == [100 % SMALL.q] * SMALL.n

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pointwise_add([0] * 4, [0] * 8, SMALL)
        with pytest.raises(ValueError):
            pointwise_multiply([0] * 4, [0] * 8, SMALL)
        with pytest.raises(ValueError):
            pointwise_subtract([0] * 4, [0] * 8, SMALL)

    def test_schoolbook_length_check(self):
        with pytest.raises(ValueError):
            schoolbook_negacyclic([0] * 4, [0] * SMALL.n, SMALL)
