"""Full-scheme cycle models: correctness, shape, and region breakdown."""

import random

import pytest

from repro.core.params import P1, P2
from repro.cyclemodel.scheme_cycles import (
    decrypt_cycles,
    encrypt_cycles,
    keygen_cycles,
)
from repro.machine.machine import CortexM4
from repro.trng.bitpool import BitPool
from repro.trng.bitsource import PrngBitSource
from repro.trng.trng import SimulatedTrng
from repro.trng.xorshift import Xorshift128


def pooled_machine(seed):
    machine = CortexM4()
    pool = BitPool(
        SimulatedTrng(Xorshift128(seed), machine=machine), machine=machine
    )
    return machine, pool


@pytest.fixture(scope="module", params=[P1, P2], ids=["P1", "P2"])
def roundtrip(request):
    params = request.param
    rng = random.Random(99)
    machine, pool = pooled_machine(1)
    pair, keygen = keygen_cycles(machine, params, pool)
    message = [rng.randrange(2) for _ in range(params.n)]
    machine, pool = pooled_machine(2)
    ct, encrypt = encrypt_cycles(machine, params, pair.public, message, pool)
    machine = CortexM4()
    decoded, decrypt = decrypt_cycles(machine, params, pair.private, ct)
    return params, message, decoded, keygen, encrypt, decrypt


class TestCorrectness:
    def test_roundtrip_through_cycle_models(self, roundtrip):
        _, message, decoded, *_ = roundtrip
        assert decoded == message

    def test_matches_functional_scheme(self):
        """Same bit stream => same keys and ciphertext as the functional
        scheme (the cycle model is a true twin, not a re-implementation
        with different semantics)."""
        from repro.core.scheme import RlweEncryptionScheme

        params = P1
        seed = 31337
        functional = RlweEncryptionScheme(
            params, bits=PrngBitSource(Xorshift128(seed))
        )
        pair_f = functional.generate_keypair()

        machine = CortexM4()
        pair_m, _ = keygen_cycles(
            machine, params, PrngBitSource(Xorshift128(seed))
        )
        assert pair_m.public.a_hat == pair_f.public.a_hat
        assert pair_m.public.p_hat == pair_f.public.p_hat
        assert pair_m.private.r2_hat == pair_f.private.r2_hat


class TestPaperShape:
    def test_cycles_within_table2_band(self, roundtrip):
        params, _, _, keygen, encrypt, decrypt = roundtrip
        paper = {
            "P1": (116772, 121166, 43324),
            "P2": (263622, 261939, 96520),
        }[params.name]
        # Encryption and decryption land within 15% of the paper;
        # keygen sits lower because the paper's own keygen exceeds the
        # sum of its parts (see EXPERIMENTS.md).
        assert 0.85 * paper[1] < encrypt.cycles < 1.15 * paper[1]
        assert 0.75 * paper[2] < decrypt.cycles < 1.15 * paper[2]
        assert 0.55 * paper[0] < keygen.cycles < 1.15 * paper[0]

    def test_decryption_much_cheaper_than_encryption(self, roundtrip):
        # Paper: "Decryption requires 35% fewer cycles than encryption"
        # (i.e. ~1/2.8 of it).
        _, _, _, _, encrypt, decrypt = roundtrip
        assert 2.3 < encrypt.cycles / decrypt.cycles < 3.5

    def test_p2_roughly_doubles_p1(self):
        results = {}
        for params in (P1, P2):
            machine, pool = pooled_machine(3)
            pair, kg = keygen_cycles(machine, params, pool)
            results[params.name] = kg.cycles
        assert 2.0 < results["P2"] / results["P1"] < 2.4


class TestRegions:
    def test_encrypt_region_breakdown(self, roundtrip):
        *_, encrypt, _ = roundtrip
        assert set(encrypt.regions) >= {"sampling", "ntt", "pointwise", "encode"}
        # The NTTs dominate encryption.
        assert encrypt.regions["ntt"] > encrypt.cycles * 0.5

    def test_decrypt_region_breakdown(self, roundtrip):
        *_, decrypt = roundtrip
        assert set(decrypt.regions) >= {"ntt", "pointwise", "decode"}
        assert decrypt.regions["ntt"] > decrypt.regions["pointwise"]

    def test_operation_cycles_str(self, roundtrip):
        *_, encrypt, _ = roundtrip
        text = str(encrypt)
        assert "Encryption" in text and "cycles" in text


class TestKeygenOptions:
    def test_supplied_a_hat_skips_uniform_generation(self):
        rng = random.Random(5)
        a_hat = [rng.randrange(P1.q) for _ in range(P1.n)]
        machine, pool = pooled_machine(4)
        pair, kg = keygen_cycles(machine, P1, pool, a_hat=a_hat)
        assert "uniform" not in kg.regions
        assert pair.public.a_hat == tuple(a_hat)

    def test_wrong_a_hat_length(self):
        machine, pool = pooled_machine(5)
        with pytest.raises(ValueError):
            keygen_cycles(machine, P1, pool, a_hat=[0] * 8)
