"""DeterministicRng: the seeded stream behind RND001-clean call sites.

Pins the stream bit-for-bit so ``rlwe-repro profile`` and the
``analysis.experiments`` drivers regenerate identical inputs on every
machine and python version — the property the RND001 lint rule exists
to protect.
"""

import pytest

from repro.analysis import experiments
from repro.core.params import P1
from repro.trng.stream import DeterministicRng

# Golden values for seed 2015 (the experiments default). If these move,
# every published reproduction number moves with them — treat a failure
# here as a wire-format break, not a test to update casually.
GOLDEN_RANDBITS_8 = [187, 81, 141, 144]
GOLDEN_POLY_HEAD = [4539, 1130, 612, 3531, 5523, 5793, 74, 528]
GOLDEN_MSG_HEAD = [1, 1, 0, 1, 1, 1, 0, 1, 1, 0, 0, 0, 1, 0, 1, 0]
GOLDEN_BYTES = "bb518d90"


def test_golden_stream_is_pinned():
    assert [DeterministicRng(2015).randbits(8) for _ in range(1)][0] == 187
    rng = DeterministicRng(2015)
    assert [rng.randbits(8) for _ in range(4)] == GOLDEN_RANDBITS_8
    assert DeterministicRng(2015).poly(8, 7681) == GOLDEN_POLY_HEAD
    assert DeterministicRng(2015).message_bits(16) == GOLDEN_MSG_HEAD
    assert DeterministicRng(2015).randbytes(4).hex() == GOLDEN_BYTES


def test_same_seed_same_stream():
    a = DeterministicRng(42)
    b = DeterministicRng(42)
    assert a.poly(64, P1.q) == b.poly(64, P1.q)
    assert a.randbytes(16) == b.randbytes(16)
    assert a.bits_consumed == b.bits_consumed


def test_different_seeds_diverge():
    assert DeterministicRng(1).poly(64, P1.q) != DeterministicRng(2).poly(
        64, P1.q
    )


def test_randrange_bounds_and_edge_cases():
    rng = DeterministicRng(7)
    for bound in (1, 2, 3, 7681, 12289):
        for _ in range(50):
            value = rng.randrange(bound)
            assert 0 <= value < bound
    assert DeterministicRng(0).randrange(1) == 0
    with pytest.raises(ValueError):
        rng.randrange(0)


def test_poly_and_message_shapes():
    rng = DeterministicRng(9)
    poly = rng.poly(P1.n, P1.q)
    assert len(poly) == P1.n
    assert all(0 <= c < P1.q for c in poly)
    bits = rng.message_bits(P1.n)
    assert len(bits) == P1.n
    assert set(bits) <= {0, 1}


def _clear_experiment_caches():
    experiments._TABLE1_CACHE.clear()
    experiments._TABLE2_CACHE.clear()


def test_major_operations_reproducible():
    _clear_experiment_caches()
    first = experiments.measure_major_operations(P1, seed=2015)
    _clear_experiment_caches()
    second = experiments.measure_major_operations(P1, seed=2015)
    assert first == second


def test_scheme_operations_reproducible():
    _clear_experiment_caches()
    first = experiments.measure_scheme_operations(P1, seed=2015)
    _clear_experiment_caches()
    second = experiments.measure_scheme_operations(P1, seed=2015)
    assert first == second
