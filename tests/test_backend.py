"""Backend registry: lookup, aliases, env selection, graceful fallback."""

import warnings

import pytest

from repro.backend import (
    BACKEND_ENV,
    BackendUnavailable,
    PolyBackend,
    PurePythonBackend,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.core.params import P1
from repro.numpy_support import FORCE_NO_NUMPY_ENV, have_numpy


class TestRegistry:
    def test_registered_names(self):
        names = backend_names()
        assert {"python-reference", "python-packed", "numpy"} <= set(names)

    def test_pure_python_always_available(self):
        usable = available_backends()
        assert usable["python-reference"] is True
        assert usable["python-packed"] is True

    def test_instances_are_cached(self):
        assert get_backend("python-reference") is get_backend(
            "python-reference"
        )

    def test_legacy_aliases(self):
        assert get_backend("reference") is get_backend("python-reference")
        assert get_backend("packed") is get_backend("python-packed")

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("simd")

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            PurePythonBackend("simd")

    def test_register_custom_backend(self):
        class Probe(PurePythonBackend):
            pass

        register_backend("probe", lambda: Probe("reference"))
        try:
            assert isinstance(get_backend("probe"), Probe)
            assert available_backends()["probe"] is True
        finally:
            from repro.backend import _FACTORIES, _INSTANCES

            _FACTORIES.pop("probe", None)
            _INSTANCES.pop("probe", None)


class TestResolve:
    def test_none_resolves_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(None).name == "python-reference"

    def test_name_resolves(self):
        assert resolve_backend("python-packed").name == "python-packed"

    def test_instance_passes_through(self):
        backend = PurePythonBackend("reference")
        assert resolve_backend(backend) is backend

    def test_bad_spec_raises_typeerror(self):
        with pytest.raises(TypeError):
            resolve_backend(42)


class TestEnvSelection:
    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python-packed")
        assert get_backend(None).name == "python-packed"

    def test_unknown_env_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "no-such-engine")
        with pytest.warns(RuntimeWarning, match="no-such-engine"):
            assert get_backend(None).name == "python-reference"

    def test_unavailable_env_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        monkeypatch.setenv(FORCE_NO_NUMPY_ENV, "1")
        with pytest.warns(RuntimeWarning, match="not available"):
            assert get_backend(None).name == "python-reference"


class TestNumpyAvailability:
    def test_forced_off_raises_backend_unavailable(self, monkeypatch):
        monkeypatch.setenv(FORCE_NO_NUMPY_ENV, "1")
        with pytest.raises(BackendUnavailable):
            get_backend("numpy")

    def test_backend_unavailable_is_keyerror(self):
        assert issubclass(BackendUnavailable, KeyError)

    def test_scheme_default_ignores_numpy_presence(self, monkeypatch):
        # The default stays pure-Python whether or not NumPy exists.
        from repro import seeded_scheme

        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert seeded_scheme(P1, 0).backend.name == "python-reference"


@pytest.mark.skipif(not have_numpy(), reason="NumPy not installed")
class TestNumpyBackendShape:
    def test_single_roundtrip(self, poly_factory):
        backend = get_backend("numpy")
        poly = poly_factory(P1)
        back = backend.ntt_inverse(backend.ntt_forward(poly, P1), P1)
        assert back == poly
        assert all(isinstance(c, int) for c in back)

    def test_batch_shapes(self, poly_factory):
        backend = get_backend("numpy")
        rows = [poly_factory(P1) for _ in range(5)]
        hat = backend.ntt_forward_batch(backend.matrix(rows), P1)
        assert hat.shape == (5, P1.n)
        back = backend.rows(backend.ntt_inverse_batch(hat, P1))
        assert back == rows

    def test_wrong_length_rejected(self):
        backend = get_backend("numpy")
        with pytest.raises(ValueError):
            backend.ntt_forward([1, 2, 3], P1)

    def test_pointwise_broadcast_row(self, poly_factory):
        backend = get_backend("numpy")
        rows = [poly_factory(P1) for _ in range(3)]
        single = poly_factory(P1)
        product = backend.rows(
            backend.pointwise_mul_batch(backend.matrix(rows), single, P1)
        )
        expected = [backend.pointwise_mul(row, single, P1) for row in rows]
        assert product == expected
