"""Tests for ``rlwe-repro lint``: checkers, suppression, baseline, CLI.

The seeded-violation fixtures under ``tests/lint_fixtures/`` pin each
checker by (code, path, line); the package-scoped checkers (CT001,
WIRE001, IPC001, ASY001, CONC001, RES001) live under a
``repro/<subpackage>/`` layout because scoping keys on the path
components after the ``repro`` directory.  The cross-module checkers
(WIRE002, WIRE003, ERR002) are exercised by the seeded protocol tree
under ``wire_surface/`` — a complete protocol root with one hole per
rule — and by scratch copies of the *real* service tree with one
dispatch/classifier branch deleted.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.lint import (
    ALL_CHECKERS,
    CHECKERS_BY_CODE,
    Baseline,
    Finding,
    run_lint,
)
from repro.lint.cli import main as lint_main
from repro.lint.framework import PARSE_ERROR_CODE, parse_directives

TESTS_DIR = Path(__file__).resolve().parent
FIXTURES = TESTS_DIR / "lint_fixtures"
REPO_ROOT = TESTS_DIR.parent

# Every seeded violation: fixture -> [(code, line), ...] in file order.
EXPECTED = {
    "rnd_violation.py": [
        ("RND001", 3),
        ("RND001", 6),
        ("RND001", 10),
    ],
    "repro/sampler/ct_violation.py": [
        ("CT001", 6),
        ("CT001", 9),
        ("CT001", 11),
    ],
    "repro/core/serialize.py": [
        ("WIRE001", 12),
        ("WIRE003", 12),
        ("WIRE001", 14),
        ("WIRE001", 16),
        ("WIRE003", 21),
    ],
    "repro/service/ipc_violation.py": [
        ("IPC001", 3),
        ("IPC001", 5),
    ],
    "repro/service/asy_violation.py": [
        ("ASY001", 11),
        ("ASY001", 12),
    ],
    "repro/service/conc_violation.py": [
        ("CONC001", 19),
        ("CONC001", 23),
        ("CONC001", 27),
    ],
    "repro/service/res_violation.py": [
        ("RES001", 8),
    ],
    "exc_violation.py": [
        ("EXC001", 7),
        ("EXC001", 14),
    ],
    "obs_violation.py": [
        ("OBS001", 10),
        ("OBS001", 11),
        ("OBS001", 12),
        ("OBS001", 13),
        ("OBS001", 14),
    ],
}

# The seeded protocol tree: cross-module holes pinned per file.  These
# only reproduce in a whole-tree run — the project checkers resolve
# protocol.py's siblings, so single-file runs skip the absent layers.
WIRE_SURFACE_EXPECTED = {
    "wire_surface/repro/api/errors.py": [
        ("ERR002", 23),
    ],
    "wire_surface/repro/service/client.py": [
        ("WIRE002", 1),
    ],
    "wire_surface/repro/service/protocol.py": [
        ("WIRE002", 11),
        ("WIRE002", 12),
        ("WIRE002", 13),
        ("WIRE002", 14),
        ("WIRE002", 15),
        ("WIRE002", 24),
        ("ERR002", 29),
        ("WIRE003", 33),
        ("WIRE003", 42),
        ("WIRE003", 55),
    ],
    "wire_surface/repro/service/server.py": [
        ("WIRE002", 1),
    ],
}


def lint(*paths, select=None, baseline=None):
    return run_lint(
        [str(p) for p in paths], ALL_CHECKERS, select=select, baseline=baseline
    )


def run_cli(capsys, *argv):
    """Run the lint CLI, returning (exit_code, stdout)."""
    code = lint_main([str(a) for a in argv])
    return code, capsys.readouterr().out


# ----------------------------------------------------------------------
# Seeded-violation fixtures: each checker fires with the right
# code, path, and line — checked through the ``--json`` CLI surface.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fixture", sorted(EXPECTED))
def test_fixture_findings_via_json_cli(capsys, fixture):
    code, out = run_cli(
        capsys, "--json", "--no-baseline", FIXTURES / fixture
    )
    assert code == 1, f"{fixture}: seeded violations must fail the lint"
    report = json.loads(out)
    got = [(f["code"], f["line"]) for f in report["findings"]]
    assert got == EXPECTED[fixture]
    for f in report["findings"]:
        assert f["path"].replace("\\", "/").endswith(
            f"lint_fixtures/{fixture}"
        )
        assert f["column"] >= 1
        assert f["message"]


def test_whole_fixture_tree():
    report = lint(FIXTURES)
    got = {}
    for f in report.findings:
        key = f.path.replace("\\", "/").split("lint_fixtures/")[1]
        got.setdefault(key, []).append((f.code, f.line))
    # suppression_demo's unsuppressed finding rides along in a tree run.
    assert got.pop("suppression_demo.py") == [("RND001", 5)]
    assert got == {**EXPECTED, **WIRE_SURFACE_EXPECTED}


def test_wire_surface_tree_via_json_cli(capsys):
    code, out = run_cli(
        capsys, "--json", "--no-baseline", FIXTURES / "wire_surface"
    )
    assert code == 1
    got = {}
    for f in json.loads(out)["findings"]:
        key = f["path"].replace("\\", "/").split("lint_fixtures/")[1]
        got.setdefault(key, []).append((f["code"], f["line"]))
    assert got == WIRE_SURFACE_EXPECTED


def test_every_checker_has_a_fixture():
    exercised = {
        code
        for expected in (EXPECTED, WIRE_SURFACE_EXPECTED)
        for pairs in expected.values()
        for code, _ in pairs
    }
    assert exercised == set(CHECKERS_BY_CODE)


def test_clean_function_in_fixture_stays_clean():
    # honest_walk (unannotated) and decode_strict_header must not fire.
    report = lint(FIXTURES / "repro" / "sampler" / "ct_violation.py")
    assert all(f.line <= 11 for f in report.findings)
    report = lint(FIXTURES / "repro" / "core" / "serialize.py")
    assert all(
        f.line <= 18 for f in report.findings if f.code == "WIRE001"
    )
    # careful_connect (guarded) and local mutation must not fire.
    report = lint(FIXTURES / "repro" / "service" / "res_violation.py")
    assert all(f.line <= 10 for f in report.findings)
    report = lint(FIXTURES / "repro" / "service" / "conc_violation.py")
    assert all(f.line <= 28 for f in report.findings)


# ----------------------------------------------------------------------
# Suppression mechanics
# ----------------------------------------------------------------------
def test_inline_disable_suppresses_finding():
    report = lint(FIXTURES / "suppression_demo.py")
    assert [(f.code, f.line) for f in report.findings] == [("RND001", 5)]
    assert [(f.code, f.line) for f in report.suppressed] == [("RND001", 3)]


def test_exc001_disable_requires_reason():
    report = lint(FIXTURES / "exc_violation.py")
    lines = [f.line for f in report.findings]
    assert 14 in lines, "reasonless disable must not silence EXC001"
    assert 29 not in lines, "disable with a reason must silence EXC001"
    assert [f.line for f in report.suppressed] == [29]


def test_bare_reraise_is_exempt():
    report = lint(FIXTURES / "exc_violation.py")
    assert all(f.line != 21 for f in report.findings)


def test_directive_parser():
    disables, secrets = parse_directives(
        "x = 1  # lint: disable=AAA111,BBB222(the reason, with comma)\n"
        "# lint: secret(alpha, beta)\n"
        "def f(alpha, beta):\n"
        "    pass\n"
    )
    assert [d.code for d in disables[1]] == ["AAA111", "BBB222"]
    # A trailing group reason covers every reasonless code before it.
    assert disables[1][0].reason == "the reason, with comma"
    assert disables[1][1].reason == "the reason, with comma"
    assert secrets[2] == ["alpha", "beta"]


def test_directive_reason_does_not_leak_forward():
    disables, _ = parse_directives(
        "x = 1  # lint: disable=AAA111(only this one),BBB222\n"
    )
    assert disables[1][0].reason == "only this one"
    assert disables[1][1].reason is None


def test_directive_on_continuation_line_attaches_to_statement(tmp_path):
    target = tmp_path / "continuation.py"
    target.write_text(
        "import os\n"
        "\n"
        "value = os.urandom(\n"
        "    16\n"
        ")  # lint: disable=RND001(demo entropy; suppression anchor test)\n"
    )
    report = lint(target)
    assert report.findings == []
    assert [(f.code, f.line) for f in report.suppressed] == [("RND001", 3)]


# ----------------------------------------------------------------------
# Baseline grandfathering
# ----------------------------------------------------------------------
def test_baseline_grandfathers_known_findings(tmp_path):
    first = lint(FIXTURES / "exc_violation.py")
    assert first.findings
    baseline = Baseline.from_findings(first.findings)

    second = lint(FIXTURES / "exc_violation.py", baseline=baseline)
    assert second.findings == []
    assert len(second.baselined) == len(first.findings)


def test_baseline_does_not_swallow_new_findings():
    baseline = Baseline.from_findings(
        lint(FIXTURES / "exc_violation.py").findings
    )
    report = lint(FIXTURES / "rnd_violation.py", baseline=baseline)
    assert [(f.code, f.line) for f in report.findings] == EXPECTED[
        "rnd_violation.py"
    ]


def test_baseline_file_round_trip(tmp_path):
    findings = lint(FIXTURES / "rnd_violation.py").findings
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings).dump(path)

    data = json.loads(path.read_text())
    assert data["version"] == Baseline.VERSION
    assert len(data["findings"]) == len(findings)

    loaded = Baseline.load(path)
    assert all(loaded.contains(f) for f in findings)


def test_baseline_rejects_wrong_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(ValueError):
        Baseline.load(path)


def test_cli_write_then_use_baseline(capsys, tmp_path):
    target = tmp_path / "grandfathered.json"
    code, _ = run_cli(
        capsys,
        "--write-baseline",
        "--baseline",
        target,
        FIXTURES / "exc_violation.py",
    )
    assert code == 0
    assert target.is_file()

    code, out = run_cli(
        capsys,
        "--json",
        "--baseline",
        target,
        FIXTURES / "exc_violation.py",
    )
    assert code == 0
    report = json.loads(out)
    assert report["findings"] == []
    assert report["baselined"] == len(EXPECTED["exc_violation.py"])


# ----------------------------------------------------------------------
# --select filtering
# ----------------------------------------------------------------------
def test_select_filters_to_requested_codes():
    report = lint(FIXTURES, select=["RND001"])
    assert report.findings
    assert {f.code for f in report.findings} == {"RND001"}


def test_select_via_cli(capsys):
    code, out = run_cli(
        capsys,
        "--json",
        "--no-baseline",
        "--select",
        "ipc001,ASY001",
        FIXTURES,
    )
    assert code == 1
    report = json.loads(out)
    assert {f["code"] for f in report["findings"]} == {"IPC001", "ASY001"}
    assert report["select"] == ["ASY001", "IPC001"]


def test_select_unknown_code_is_usage_error(capsys):
    with pytest.raises(SystemExit):
        lint_main(["--select", "NOPE999", str(FIXTURES)])
    capsys.readouterr()


# ----------------------------------------------------------------------
# --json schema round-trip
# ----------------------------------------------------------------------
def test_finding_json_round_trip():
    for finding in lint(FIXTURES).findings:
        clone = Finding.from_json(finding.to_json())
        assert clone == finding


def test_report_json_schema(capsys):
    code, out = run_cli(capsys, "--json", "--no-baseline", FIXTURES)
    assert code == 1
    report = json.loads(out)
    for key in (
        "version",
        "tool",
        "paths",
        "select",
        "checked_files",
        "findings",
        "counts",
        "suppressed",
        "baselined",
    ):
        assert key in report
    assert report["version"] == 1
    assert report["checked_files"] == 15
    assert sum(report["counts"].values()) == len(report["findings"])
    for f in report["findings"]:
        assert set(f) == {"code", "path", "line", "column", "message"}


# ----------------------------------------------------------------------
# CLI behaviour
# ----------------------------------------------------------------------
def test_cli_exit_zero_on_clean_file(capsys, tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n")
    code, out = run_cli(capsys, "--no-baseline", clean)
    assert code == 0
    assert "0 finding(s)" in out


def test_cli_missing_path_is_usage_error(capsys):
    with pytest.raises(SystemExit):
        lint_main(["definitely/not/a/path"])
    capsys.readouterr()


def test_cli_list_checkers(capsys):
    code, out = run_cli(capsys, "--list-checkers")
    assert code == 0
    for checker_code in CHECKERS_BY_CODE:
        assert checker_code in out


def test_syntax_error_becomes_parse_finding(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    report = lint(bad)
    assert [f.code for f in report.findings] == [PARSE_ERROR_CODE]
    assert report.findings[0].line == 1


def test_lint_subcommand_is_registered():
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(["lint", "--list-checkers"])
    assert args.command == "lint"


# ----------------------------------------------------------------------
# Scratch copies of the real service tree: deleting one dispatch or
# classifier branch must flag — the drift the project pass exists for.
# ----------------------------------------------------------------------
SERVICE_PACKAGES = ("service", "api", "keystore")


def copy_service_tree(tmp_path):
    """Copy the real protocol surface into a scratch ``repro`` tree."""
    scratch = tmp_path / "repro"
    for package in SERVICE_PACKAGES:
        shutil.copytree(
            REPO_ROOT / "src" / "repro" / package, scratch / package
        )
    return scratch


def test_scratch_copy_of_real_service_tree_is_clean(tmp_path):
    report = lint(copy_service_tree(tmp_path))
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.findings == [], f"scratch tree not clean:\n{rendered}"


def test_deleting_a_dispatch_branch_fires_wire002(tmp_path):
    scratch = copy_service_tree(tmp_path)
    server = scratch / "service" / "server.py"
    text = server.read_text()
    assert "== OP_STATS" in text
    server.write_text(text.replace("== OP_STATS", "== OP_PING"))
    report = lint(scratch)
    assert any(
        f.code == "WIRE002"
        and "OP_STATS" in f.message
        and "dispatch" in f.message
        for f in report.findings
    ), [f.render() for f in report.findings]


def test_deleting_a_classifier_branch_fires_err002(tmp_path):
    scratch = copy_service_tree(tmp_path)
    errors = scratch / "api" / "errors.py"
    text = errors.read_text()
    assert "== STATUS_KEY_NOT_FOUND" in text
    errors.write_text(
        text.replace("== STATUS_KEY_NOT_FOUND", "== STATUS_BAD_REQUEST")
    )
    report = lint(scratch)
    assert any(
        f.code == "ERR002" and "STATUS_KEY_NOT_FOUND" in f.message
        for f in report.findings
    ), [f.render() for f in report.findings]


# ----------------------------------------------------------------------
# The wire-contract artifact
# ----------------------------------------------------------------------
def test_contract_regenerates_byte_identical(capsys, tmp_path):
    target = tmp_path / "contract.json"
    code, _ = run_cli(
        capsys, "--no-baseline", "--contract", target, REPO_ROOT / "src"
    )
    assert code == 0
    committed = REPO_ROOT / "wire-contract.json"
    assert target.read_text() == committed.read_text(), (
        "wire-contract.json drifted: regenerate with "
        "`rlwe-repro lint --contract wire-contract.json`"
    )


def test_contract_proves_the_surface_is_closed():
    contract = json.loads((REPO_ROOT / "wire-contract.json").read_text())
    assert contract["version"] == 1
    assert len(contract["opcodes"]) >= 19
    for entry in contract["opcodes"]:
        assert entry["name"], entry
        if entry["worker_only"]:
            assert entry["worker_handled"], entry
            assert entry["client_methods"] == [], entry
        else:
            assert entry["server_dispatch"], entry
            assert entry["client_methods"], entry
    for entry in contract["statuses"]:
        assert entry["emitted"], entry
        if entry["constant"] != "STATUS_OK":
            assert entry["classified"], entry


def test_contract_refuses_ambiguous_roots(capsys, tmp_path):
    # Fixture trees live under tests/ and are excluded: linting only
    # them leaves no root to build a contract from.
    with pytest.raises(SystemExit):
        lint_main(
            [
                "--no-baseline",
                "--contract",
                str(tmp_path / "contract.json"),
                str(FIXTURES),
            ]
        )
    capsys.readouterr()


# ----------------------------------------------------------------------
# The merged tree itself must be clean: the gate the CI job enforces.
# ----------------------------------------------------------------------
def test_repo_tree_is_lint_clean():
    report = lint(
        REPO_ROOT / "src",
        REPO_ROOT / "benchmarks",
        REPO_ROOT / "examples",
    )
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.findings == [], f"lint regressions:\n{rendered}"
    assert report.checked_files >= 100
