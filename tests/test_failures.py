"""Analytic decryption-failure estimates versus observed behaviour."""

import math

import pytest

from repro import seeded_scheme
from repro.core.failures import (
    error_variance,
    estimate,
    per_coefficient_failure,
    per_message_failure,
)
from repro.core.params import P1, P2


class TestAnalyticEstimates:
    def test_error_variance_formula(self):
        sigma2 = P1.sigma**2
        assert error_variance(P1) == pytest.approx(
            2 * 256 * sigma2**2 + sigma2
        )

    def test_p1_failure_regime(self):
        # Known property of these legacy parameters: ~1e-5 per
        # coefficient, ~1% per message.
        p_coeff = per_coefficient_failure(P1)
        assert 1e-6 < p_coeff < 1e-4
        p_msg = per_message_failure(P1)
        assert 1e-3 < p_msg < 3e-2

    def test_p2_comparable_rate(self):
        # P2 doubles n but also raises q; rates stay in the same decade.
        ratio = per_coefficient_failure(P2) / per_coefficient_failure(P1)
        assert 0.05 < ratio < 20

    def test_message_failure_union_bound(self):
        p = per_coefficient_failure(P1)
        assert per_message_failure(P1) <= P1.n * p
        assert per_message_failure(P1) == pytest.approx(
            1 - (1 - p) ** P1.n
        )

    def test_estimate_dataclass(self):
        est = estimate(P1)
        assert est.params_name == "P1"
        assert est.threshold == 1920
        assert est.error_stddev == pytest.approx(
            math.sqrt(error_variance(P1))
        )
        assert "P1" in str(est)


class TestObservedNoise:
    def test_decrypted_noise_matches_predicted_stddev(self):
        """Measure actual error coefficients from real decryptions and
        compare with the analytic standard deviation."""
        scheme = seeded_scheme(P1, seed=77)
        keys = scheme.generate_keypair()
        zero_message = [0] * P1.n
        observed = []
        for _ in range(6):
            ct = scheme.encrypt_polynomial(keys.public, zero_message)
            noisy = scheme.decrypt_polynomial(keys.private, ct)
            q = P1.q
            observed.extend(c if c <= q // 2 else c - q for c in noisy)
        var = sum(c * c for c in observed) / len(observed)
        predicted = error_variance(P1)
        # r1/r2 are fixed per key, so per-key variance wobbles; allow a
        # generous band around the ensemble prediction.
        assert 0.5 * predicted < var < 2.0 * predicted

    def test_noise_rarely_crosses_threshold(self):
        scheme = seeded_scheme(P1, seed=78)
        keys = scheme.generate_keypair()
        crossings = 0
        total = 0
        for _ in range(8):
            ct = scheme.encrypt_polynomial(keys.public, [0] * P1.n)
            noisy = scheme.decrypt_polynomial(keys.private, ct)
            q = P1.q
            crossings += sum(
                1
                for c in noisy
                if min(c, q - c) >= P1.quarter_q
            )
            total += P1.n
        assert crossings / total < 1e-2
