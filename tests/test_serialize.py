"""Wire formats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import seeded_scheme
from repro.core.params import P1, P2
from repro.core.serialize import (
    deserialize_ciphertext,
    deserialize_private_key,
    deserialize_public_key,
    pack_coefficients,
    polynomial_wire_bytes,
    serialize_ciphertext,
    serialize_keypair,
    serialize_private_key,
    serialize_public_key,
    unpack_coefficients,
)


class TestCoefficientPacking:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=7680),
            min_size=1,
            max_size=64,
        )
    )
    @settings(max_examples=100)
    def test_roundtrip_13bit(self, coeffs):
        packed = pack_coefficients(coeffs, 7681)
        assert unpack_coefficients(packed, len(coeffs), 7681) == coeffs

    @given(
        st.lists(
            st.integers(min_value=0, max_value=12288),
            min_size=1,
            max_size=64,
        )
    )
    @settings(max_examples=100)
    def test_roundtrip_14bit(self, coeffs):
        packed = pack_coefficients(coeffs, 12289)
        assert unpack_coefficients(packed, len(coeffs), 12289) == coeffs

    def test_density(self):
        # 256 coefficients at 13 bits = 416 bytes, not 512.
        packed = pack_coefficients([0] * 256, 7681)
        assert len(packed) == 416
        assert polynomial_wire_bytes(P1) == 416
        assert polynomial_wire_bytes(P2) == 896

    def test_out_of_range_coefficient(self):
        with pytest.raises(ValueError):
            pack_coefficients([7681], 7681)

    def test_truncated_data(self):
        with pytest.raises(ValueError):
            unpack_coefficients(b"\x00", 10, 7681)

    def test_oversized_decoded_value_detected(self):
        # All-ones bits decode to 8191 >= q: must be rejected.
        with pytest.raises(ValueError):
            unpack_coefficients(b"\xff\xff", 1, 7681)


@pytest.fixture(params=[P1, P2], ids=["P1", "P2"])
def keypair_and_ct(request):
    scheme = seeded_scheme(request.param, seed=500)
    pair = scheme.generate_keypair()
    ct = scheme.encrypt(pair.public, b"serialization test")
    return scheme, pair, ct


class TestObjectRoundTrips:
    def test_public_key(self, keypair_and_ct):
        _, pair, _ = keypair_and_ct
        data = serialize_public_key(pair.public)
        restored = deserialize_public_key(data)
        assert restored.a_hat == pair.public.a_hat
        assert restored.p_hat == pair.public.p_hat
        assert restored.params is pair.public.params

    def test_private_key(self, keypair_and_ct):
        _, pair, _ = keypair_and_ct
        restored = deserialize_private_key(serialize_private_key(pair.private))
        assert restored.r2_hat == pair.private.r2_hat

    def test_ciphertext(self, keypair_and_ct):
        _, _, ct = keypair_and_ct
        restored = deserialize_ciphertext(serialize_ciphertext(ct))
        assert restored.c1_hat == ct.c1_hat
        assert restored.c2_hat == ct.c2_hat

    def test_decrypt_after_roundtrip(self, keypair_and_ct):
        scheme, pair, ct = keypair_and_ct
        prv = deserialize_private_key(serialize_private_key(pair.private))
        ct2 = deserialize_ciphertext(serialize_ciphertext(ct))
        assert scheme.decrypt(prv, ct2, length=18) == b"serialization test"

    def test_keypair_helper(self, keypair_and_ct):
        _, pair, _ = keypair_and_ct
        pub, prv = serialize_keypair(pair)
        assert deserialize_public_key(pub).a_hat == pair.public.a_hat
        assert deserialize_private_key(prv).r2_hat == pair.private.r2_hat


class TestStrictLengths:
    """Regression: deserializers accepted trailing garbage."""

    def test_ciphertext_trailing_garbage(self, keypair_and_ct):
        _, _, ct = keypair_and_ct
        data = serialize_ciphertext(ct)
        with pytest.raises(ValueError):
            deserialize_ciphertext(data + b"JUNK")

    def test_public_key_trailing_garbage(self, keypair_and_ct):
        _, pair, _ = keypair_and_ct
        data = serialize_public_key(pair.public)
        with pytest.raises(ValueError):
            deserialize_public_key(data + b"\x00")

    def test_private_key_trailing_garbage(self, keypair_and_ct):
        _, pair, _ = keypair_and_ct
        data = serialize_private_key(pair.private)
        with pytest.raises(ValueError):
            deserialize_private_key(data + b"\xff" * 3)

    def test_truncated_body(self, keypair_and_ct):
        _, _, ct = keypair_and_ct
        data = serialize_ciphertext(ct)
        with pytest.raises(ValueError):
            deserialize_ciphertext(data[:-1])


class TestHeaderValidation:
    def test_bad_magic(self, keypair_and_ct):
        _, pair, _ = keypair_and_ct
        data = bytearray(serialize_public_key(pair.public))
        data[0] ^= 0xFF
        with pytest.raises(ValueError):
            deserialize_public_key(bytes(data))

    def test_kind_mismatch(self, keypair_and_ct):
        _, pair, _ = keypair_and_ct
        data = serialize_public_key(pair.public)
        with pytest.raises(ValueError):
            deserialize_private_key(data)

    def test_version_check(self, keypair_and_ct):
        _, pair, _ = keypair_and_ct
        data = bytearray(serialize_public_key(pair.public))
        data[4] = 99  # version byte
        with pytest.raises(ValueError):
            deserialize_public_key(bytes(data))

    def test_short_buffer_is_value_error(self):
        # Regression: a 5-byte buffer used to escape as struct.error.
        with pytest.raises(ValueError):
            deserialize_public_key(b"RLWE\x01")
        with pytest.raises(ValueError):
            deserialize_ciphertext(b"")

    def test_unknown_parameter_set_is_value_error(self):
        # Regression: an unknown name used to escape as KeyError from
        # get_parameter_set.
        header = b"RLWE" + bytes([1, 1, 2]) + b"ZZ"
        with pytest.raises(ValueError):
            deserialize_public_key(header)

    def test_non_ascii_parameter_name_is_value_error(self):
        header = b"RLWE" + bytes([1, 1, 2]) + b"\xff\xfe"
        with pytest.raises(ValueError):
            deserialize_public_key(header)
