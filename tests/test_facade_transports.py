"""Cross-transport behavior of the session facade.

Pins the PR 4 acceptance invariant: for a fixed seed and parameter
set, sessions over ``local``, ``pool:1``, and a fresh same-seeded
``tcp://`` server produce bit-identical wire-serialized results
(scalar and batched), wire objects round-trip across transports, and
the same bad input raises the same typed exception on every transport.

asyncio tests run through ``asyncio.run`` (no pytest-asyncio).  Pool
and server tests spawn real subprocesses/sockets and are kept small.
"""

import asyncio
import threading

import pytest

from repro import P1, P2, seeded_scheme
from repro.api import (
    AsyncRlweSession,
    DecryptionError,
    RlweSession,
    WireFormatError,
)
from repro.api.session import _seeded_scheme
from repro.api.smoke import run_smoke
from repro.core import serialize
from repro.core.kem import RlweKem
from repro.service.client import RlweServiceClient
from repro.service.executor import serving_seed
from repro.service.server import start_server

SEED = 4207


def run(coro):
    return asyncio.run(coro)


async def _start_seeded_server(params, seed, **kwargs):
    """A server wired exactly like ``rlwe-repro serve --seed``."""
    keypair = _seeded_scheme(params, seed, None).generate_keypair()
    scheme = _seeded_scheme(params, serving_seed(seed), None)
    return await start_server(
        scheme, port=0, keypair=keypair, max_wait=0.05, **kwargs
    )


async def _open_matrix(params, seed, port, include_pool=True):
    engines = ["local", f"tcp://127.0.0.1:{port}"]
    if include_pool:
        engines.insert(1, "pool:1")
    return [
        await AsyncRlweSession.open(engine, params=params, seed=seed)
        for engine in engines
    ]


class TestCrossTransportBitIdentity:
    """params x op x scalar/batch, all transports, one seed."""

    @pytest.mark.parametrize(
        "params,include_pool", [(P1, True), (P2, False)]
    )
    def test_matrix(self, params, include_pool):
        async def main():
            server = await _start_seeded_server(params, SEED)
            sessions = []
            try:
                sessions = await _open_matrix(
                    params, SEED, server.port, include_pool
                )
                # Key identity.
                key_bytes = {s.public_key_bytes for s in sessions}
                assert len(key_bytes) == 1
                assert {s.params for s in sessions} == {params}

                # Scalar encrypt: first serving-stream consumption.
                message = b"matrix"[: params.message_bytes]
                cts = [await s.encrypt(message) for s in sessions]
                assert len(set(cts)) == 1

                # Batched encrypt: one window everywhere.
                batch = [bytes([i]) * 3 for i in range(6)]
                batches = [await s.encrypt_many(batch) for s in sessions]
                assert all(b == batches[0] for b in batches[1:])

                # Scalar + batched encapsulate (key and wire bytes).
                caps = [await s.encapsulate() for s in sessions]
                assert len(set(caps)) == 1
                many = [await s.encapsulate_many(2) for s in sessions]
                assert all(m == many[0] for m in many[1:])

                # Deterministic ops: fixtures from an independent party.
                fixture = seeded_scheme(params, seed=SEED + 13)
                public = sessions[0].public_key
                f_cts = [
                    serialize.serialize_ciphertext(
                        fixture.encrypt(public, m)
                    )
                    for m in (message, b"a", b"bb")
                ]
                scalar_plains = [
                    await s.decrypt(f_cts[0], length=len(message))
                    for s in sessions
                ]
                assert set(scalar_plains) == {message}
                batch_plains = [
                    tuple(await s.decrypt_many(f_cts)) for s in sessions
                ]
                assert len(set(batch_plains)) == 1

                kem = RlweKem(fixture)
                cap, secret = kem.encapsulate(public)
                cap_bytes = serialize.serialize_encapsulation(cap)
                keys = [await s.decapsulate(cap_bytes) for s in sessions]
                assert set(keys) == {secret.key}

                # Round-trips: every transport's output decrypts on
                # every other transport.
                for producer in range(len(sessions)):
                    for consumer in range(len(sessions)):
                        assert (
                            await sessions[consumer].decrypt(
                                cts[producer], length=len(message)
                            )
                            == message
                        )
            finally:
                for session in sessions:
                    await session.aclose()
                await server.close()

        run(main())

    def test_exception_type_parity(self):
        """The same bad bytes raise the same type on all transports."""

        async def main():
            server = await _start_seeded_server(P1, SEED)
            sessions = []
            try:
                sessions = await _open_matrix(P1, SEED, server.port)
                fixture = seeded_scheme(P1, seed=SEED + 13)
                public = sessions[0].public_key
                good_ct = serialize.serialize_ciphertext(
                    fixture.encrypt(public, b"ok")
                )
                kem = RlweKem(fixture)
                cap, _ = kem.encapsulate(public)
                cap_bytes = serialize.serialize_encapsulation(cap)
                tampered = cap_bytes[:-1] + bytes([cap_bytes[-1] ^ 1])

                for session in sessions:
                    with pytest.raises(WireFormatError):
                        await session.decrypt(good_ct[:-3])
                    with pytest.raises(WireFormatError):
                        await session.decrypt(good_ct + b"!")
                    with pytest.raises(DecryptionError):
                        await session.decapsulate(tampered)
                    # The session survives its errors.
                    assert (
                        await session.decrypt(good_ct, length=2) == b"ok"
                    )
            finally:
                for session in sessions:
                    await session.aclose()
                await server.close()

        run(main())


class TestSyncOverLiveServer:
    def test_sync_session_against_threaded_server(self):
        """The sync facade drives a real server from plain code."""
        handoff = []
        started = threading.Event()

        def serve():
            async def main():
                server = await _start_seeded_server(P1, SEED)
                stop = asyncio.Event()
                handoff.append(
                    (server.port, asyncio.get_running_loop(), stop)
                )
                started.set()
                try:
                    await stop.wait()
                finally:
                    await server.close()

            asyncio.run(main())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert started.wait(timeout=30)
        port, loop, stop = handoff[0]
        try:
            with RlweSession.open(
                f"tcp://127.0.0.1:{port}"
            ) as remote, RlweSession.open(
                "local", params=P1, seed=SEED
            ) as local:
                assert remote.params == P1
                assert remote.engine == f"tcp://127.0.0.1:{port}"
                assert local.encrypt(b"sync") == remote.encrypt(b"sync")
                stats = remote.stats()
                assert stats["transport"]["executor"]["kind"] == "inline"
        finally:
            loop.call_soon_threadsafe(stop.set)
            thread.join(timeout=30)

    def test_smoke_harness_passes_locally(self):
        lines = []
        code = run_smoke(
            ["local"], params_name="P1", seed=11, batch=3, out=lines.append
        )
        assert code == 0
        assert any("PASS" in line for line in lines)


class TestClientContextManagers:
    """service.Client lifecycle support the RemoteTransport relies on."""

    def test_async_with_closes_on_error(self):
        async def main():
            server = await _start_seeded_server(P1, SEED)
            try:
                with pytest.raises(RuntimeError):
                    async with await RlweServiceClient.connect(
                        "127.0.0.1", server.port
                    ) as client:
                        await client.ping()
                        raise RuntimeError("boom")
                # The context manager closed the client on the way out.
                assert client._closed
                with pytest.raises(ConnectionError):
                    await client.ping()
            finally:
                await server.close()

        run(main())

    def test_sync_with_closes_socket(self):
        async def main():
            server = await _start_seeded_server(P1, SEED)
            try:
                client = await RlweServiceClient.connect(
                    "127.0.0.1", server.port
                )
                with client:
                    assert await client.ping() == b"ping"
                assert client._closed
                assert client._writer.is_closing()
                with pytest.raises(ConnectionError):
                    await client.ping()
                await client.close()  # still safe after close_nowait
            finally:
                await server.close()

        run(main())

    def test_close_nowait_fails_pending(self):
        async def main():
            server = await _start_seeded_server(P1, SEED)
            try:
                client = await RlweServiceClient.connect(
                    "127.0.0.1", server.port
                )
                pending = asyncio.ensure_future(client.encapsulate())
                await asyncio.sleep(0)  # let the request go out
                client.close_nowait()
                with pytest.raises((ConnectionError, asyncio.CancelledError)):
                    await pending
            finally:
                await server.close()

        run(main())

    def test_connect_refused_leaves_nothing_open(self):
        async def main():
            with pytest.raises(OSError):
                await RlweServiceClient.connect("127.0.0.1", 1)

        run(main())
