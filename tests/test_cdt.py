"""CDT (inversion) sampler: identical distribution over the same table."""

from fractions import Fraction

import pytest

from repro.core.params import P1
from repro.sampler.cdt import CdtSampler
from repro.sampler.distribution import DiscreteGaussian
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitsource import PrngBitSource, QueueBitSource
from repro.trng.xorshift import Xorshift128


@pytest.fixture(scope="module")
def toy_table():
    return DiscreteGaussian(sigma=1.2).half_table(precision=10, tail=6)


class TestExactDistribution:
    def test_exhaustive_magnitudes(self, toy_table):
        """Enumerate every uniform draw: the CDT must return magnitude x
        exactly probabilities[x] times out of 2^precision."""
        precision = toy_table.precision
        counts = {}
        for u in range(1 << precision):
            bits = QueueBitSource.from_integer(u, precision)
            sampler = CdtSampler(toy_table, 97, bits)
            row = sampler.sample_magnitude()
            counts[row] = counts.get(row, 0) + 1
        for x, p in enumerate(toy_table.probabilities):
            assert counts.get(x, 0) == p, x

    def test_matches_knuth_yao_distribution(self, toy_table):
        """CDT and Knuth-Yao realise the same table, hence the same
        exact distribution."""
        pm = ProbabilityMatrix.from_table(toy_table)
        from repro.sampler.ddg import exact_magnitude_distribution

        ky = exact_magnitude_distribution(pm)
        scale = 1 << toy_table.precision
        for x, p in enumerate(toy_table.probabilities):
            assert ky[x] == Fraction(p, scale)


class TestSampling:
    def test_range(self):
        sampler = CdtSampler.for_params(P1, PrngBitSource(Xorshift128(1)))
        for _ in range(1500):
            assert 0 <= sampler.sample() < P1.q

    def test_variance(self):
        sampler = CdtSampler.for_params(P1, PrngBitSource(Xorshift128(2)))
        values = [sampler.sample_centered() for _ in range(15000)]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert var == pytest.approx(P1.sigma**2, rel=0.06)

    def test_polynomial(self):
        sampler = CdtSampler.for_params(P1, PrngBitSource(Xorshift128(3)))
        assert len(sampler.sample_polynomial(64)) == 64

    def test_bits_per_sample(self, toy_table):
        bits = PrngBitSource(Xorshift128(4))
        sampler = CdtSampler(toy_table, 97, bits)
        sampler.sample()
        # One full-precision uniform plus a sign bit.
        assert bits.bits_consumed == toy_table.precision + 1


class TestStorage:
    def test_table_bytes(self, toy_table):
        sampler = CdtSampler(toy_table, 97, QueueBitSource([]))
        # 7 entries at ceil(10/8) = 2 bytes.
        assert sampler.table_bytes() == 7 * 2

    def test_q_validation(self, toy_table):
        with pytest.raises(ValueError):
            CdtSampler(toy_table, 12, QueueBitSource([]))
