"""The ring-LWE encryption scheme end to end."""

import pytest

from repro import seeded_scheme
from repro.core.params import P1, P2
from repro.core.scheme import RlweEncryptionScheme
from repro.ntt.reference import ntt_inverse
from repro.trng.bitsource import PrngBitSource
from repro.trng.xorshift import Xorshift128
from tests.conftest import SMALL


@pytest.fixture(params=[P1, P2], ids=["P1", "P2"])
def scheme(request):
    return seeded_scheme(request.param, seed=1001)


class TestRoundTrip:
    def test_bytes_roundtrip(self, scheme):
        keys = scheme.generate_keypair()
        message = bytes(range(scheme.params.message_bytes))
        ct = scheme.encrypt(keys.public, message)
        assert scheme.decrypt(keys.private, ct) == message

    def test_short_message_padding(self, scheme):
        keys = scheme.generate_keypair()
        ct = scheme.encrypt(keys.public, b"hi")
        assert scheme.decrypt(keys.private, ct, length=2) == b"hi"

    def test_many_messages_one_key(self, scheme):
        import random

        rng = random.Random(7)
        keys = scheme.generate_keypair()
        failures = 0
        for _ in range(25):
            message = bytes(
                rng.randrange(256)
                for _ in range(scheme.params.message_bytes)
            )
            ct = scheme.encrypt(keys.public, message)
            if scheme.decrypt(keys.private, ct) != message:
                failures += 1
        # Decryption failures exist by design (~1%/message, see
        # repro.core.failures); a seeded run this short stays small.
        assert failures <= 2

    def test_deterministic_under_seed(self):
        a = seeded_scheme(P1, seed=5).generate_keypair()
        b = seeded_scheme(P1, seed=5).generate_keypair()
        assert a.public.a_hat == b.public.a_hat
        assert a.private.r2_hat == b.private.r2_hat

    def test_packed_ntt_backend_equivalent(self):
        ref = seeded_scheme(P1, seed=9, ntt="reference").generate_keypair()
        packed = seeded_scheme(P1, seed=9, ntt="packed").generate_keypair()
        assert ref.public.p_hat == packed.public.p_hat


class TestSchemeStructure:
    def test_keygen_relation(self, scheme):
        """p_hat = r1_hat - a_hat * r2_hat must hold coefficient-wise."""
        keys = scheme.generate_keypair()
        params = scheme.params
        q = params.q
        # Reconstruct r1_hat from the published relation.
        r1_hat = [
            (p + a * r2) % q
            for p, a, r2 in zip(
                keys.public.p_hat, keys.public.a_hat, keys.private.r2_hat
            )
        ]
        # r1 must be a small Gaussian polynomial: invert the NTT and
        # check magnitudes against the sampler tail.
        r1 = ntt_inverse(r1_hat, params)
        tail = 12 * params.sigma + 1
        for c in r1:
            centered = c if c <= q // 2 else c - q
            assert abs(centered) <= tail

    def test_ciphertext_is_ntt_domain_tuple(self, scheme):
        keys = scheme.generate_keypair()
        ct = scheme.encrypt(keys.public, b"x")
        assert len(ct.c1_hat) == scheme.params.n
        assert len(ct.c2_hat) == scheme.params.n
        assert all(0 <= c < scheme.params.q for c in ct.c1_hat)

    def test_decrypt_polynomial_exposes_noise(self, scheme):
        """The decrypted polynomial is mbar + small noise: every
        coefficient must be close to 0 or q/2."""
        keys = scheme.generate_keypair()
        ct = scheme.encrypt(keys.public, bytes([0xFF, 0x00]))
        noisy = scheme.decrypt_polynomial(keys.private, ct)
        q = scheme.params.q
        for c in noisy:
            dist_zero = min(c, q - c)
            dist_half = abs(c - q // 2)
            assert min(dist_zero, dist_half) < q // 4


class TestValidation:
    def test_capacity_enforced(self, scheme):
        keys = scheme.generate_keypair()
        with pytest.raises(ValueError):
            scheme.encrypt(
                keys.public, b"x" * (scheme.params.message_bytes + 1)
            )

    def test_cross_parameter_misuse_rejected(self):
        s1 = seeded_scheme(P1, seed=2)
        s2 = seeded_scheme(P2, seed=2)
        k1 = s1.generate_keypair()
        with pytest.raises(ValueError):
            s2.encrypt_polynomial(k1.public, [0] * P2.n)

    def test_bad_a_hat_length(self):
        scheme = seeded_scheme(P1, seed=3)
        with pytest.raises(ValueError):
            scheme.generate_keypair(a_hat=[0] * 8)

    def test_message_poly_length_check(self):
        scheme = seeded_scheme(P1, seed=4)
        keys = scheme.generate_keypair()
        with pytest.raises(ValueError):
            scheme.encrypt_polynomial(keys.public, [0] * 8)


class TestUniformPolynomial:
    def test_in_range_and_well_spread(self):
        scheme = seeded_scheme(P1, seed=6)
        poly = scheme.random_public_polynomial()
        assert len(poly) == P1.n
        assert all(0 <= c < P1.q for c in poly)
        assert len(set(poly)) > P1.n // 2  # no obvious degeneracy

    def test_small_ring_scheme_works(self):
        # n=16 with the full-size modulus: noise is far below q/4, so
        # even the tiny ring decrypts exactly.
        from repro.core.params import custom_parameter_set

        tiny = custom_parameter_set(16, 7681, 11.31)
        scheme = RlweEncryptionScheme(
            tiny, bits=PrngBitSource(Xorshift128(8))
        )
        keys = scheme.generate_keypair()
        ct = scheme.encrypt(keys.public, b"\xa5\x5a")
        assert scheme.decrypt(keys.private, ct) == b"\xa5\x5a"
