"""Tests for the twiddle-factor tables."""

import pytest

from repro.core.params import P1, P2
from repro.ntt.roots import ntt_tables
from tests.conftest import SMALL


@pytest.fixture(params=[SMALL, P1, P2], ids=["n16", "P1", "P2"])
def tables(request):
    return ntt_tables(request.param)


class TestStageStructure:
    def test_stage_count_is_log2n(self, tables):
        n = tables.params.n
        assert tables.stage_count == n.bit_length() - 1
        assert [s.m for s in tables.forward_stages] == [
            2**k for k in range(1, n.bit_length())
        ]

    def test_stage_roots_orders(self, tables):
        q = tables.params.q
        for stage in tables.forward_stages:
            # wm has order m; w0 = sqrt(wm) has order 2m.
            assert pow(stage.wm, stage.m, q) == 1
            assert pow(stage.w0, 2, q) == stage.wm
            assert pow(stage.w0, stage.m, q) == q - 1

    def test_inverse_stage_roots(self, tables):
        q = tables.params.q
        for fwd, inv in zip(tables.forward_stages, tables.inverse_stages):
            assert fwd.wm * inv.wm % q == 1
            assert inv.w0 == 1


class TestTwiddleTables:
    def test_forward_twiddles_are_odd_psi_powers(self, tables):
        params = tables.params
        q, psi, n = params.q, params.psi, params.n
        for stage, twiddles in zip(
            tables.forward_stages, tables.forward_twiddles
        ):
            exponent = n // stage.m
            for j, w in enumerate(twiddles):
                assert w == pow(psi, exponent * (2 * j + 1), q)

    def test_twiddle_counts(self, tables):
        # Sum over stages of m/2 twiddles = n - 1.
        total = sum(len(t) for t in tables.forward_twiddles)
        assert total == tables.params.n - 1

    def test_inverse_twiddles_invert_cyclic_part(self, tables):
        q = tables.params.q
        for stage, twiddles in zip(
            tables.inverse_stages, tables.inverse_twiddles
        ):
            for j, w in enumerate(twiddles):
                assert w == pow(stage.wm, j, q)


class TestFinalScale:
    def test_final_scale_values(self, tables):
        params = tables.params
        q = params.q
        n_inv = params.n_inverse
        psi_inv = params.psi_inverse
        for j, value in enumerate(tables.final_scale):
            assert value == n_inv * pow(psi_inv, j, q) % q

    def test_final_scale_length(self, tables):
        assert len(tables.final_scale) == tables.params.n


class TestCachingAndFootprint:
    def test_tables_are_cached(self):
        assert ntt_tables(P1) is ntt_tables(P1)

    def test_flash_bytes_positive_and_scales(self):
        assert ntt_tables(P2).flash_bytes() > ntt_tables(P1).flash_bytes()
        # 2 bytes per halfword constant: 2*(n-1) twiddles + n scale values.
        expected = 2 * (2 * (P1.n - 1) + P1.n)
        assert ntt_tables(P1).flash_bytes() == expected

    def test_non_ntt_friendly_rejected(self):
        from repro.core.params import P4

        with pytest.raises(ValueError):
            ntt_tables(P4)
