"""Suppression-mechanics fixture: inline disables silence findings."""

import random  # lint: disable=RND001(fixture: inline suppression demo)

import secrets  # line 5: RND001 (not suppressed)


def draw():
    return random.random(), secrets.token_bytes(2)
