"""WIRE001 fixture: a deserializer violating every strictness rule."""

import struct

PARAMETER_SETS = {"P1": object()}


def get_parameter_set(name):
    return PARAMETER_SETS[name]


def decode_loose_header(payload):
    # line 13: WIRE001 (unpack with no length guard -> struct.error)
    count, kind = struct.unpack_from("!IB", payload)
    # line 15: WIRE001 (KeyError escapes on an unknown name)
    params = get_parameter_set(payload[5:7].decode(errors="replace"))
    # No trailing-bytes check either: surplus input is accepted.
    return count, kind, params


def decode_strict_header(payload):
    if len(payload) != 5:
        raise ValueError(f"expected exactly 5 bytes, got {len(payload)}")
    count, kind = struct.unpack_from("!IB", payload)
    return count, kind
