"""CT001 fixture: secret-dependent control flow and indexing."""


# lint: secret(secret_bits)
def leaky_sample(secret_bits, table):
    if secret_bits & 1:  # line 6: CT001 (secret-dependent if)
        return 0
    derived = secret_bits >> 1
    while derived:  # line 9: CT001 (taint propagated through assignment)
        derived >>= 1
    return table[secret_bits]  # line 11: CT001 (secret-indexed lookup)


def honest_walk(public_value, table):
    # No annotation: data-dependent by design, CT001 stays silent.
    if public_value & 1:
        return table[public_value]
    return 0
