"""IPC001 fixture: pickle on the IPC pipe."""

import pickle  # line 3: IPC001

from marshal import dumps  # line 5: IPC001


def ship(obj, pipe):
    pipe.write(pickle.dumps(obj) + dumps(obj))
