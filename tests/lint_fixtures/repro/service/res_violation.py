"""RES001 fixture: an acquired connection with no error-path close."""

import asyncio


async def fragile_connect(host, port):
    # line 8: RES001 (no finally/except close on reader/writer)
    reader, writer = await asyncio.open_connection(host, port)
    await writer.drain()
    return reader, writer


async def careful_connect(host, port):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        await writer.drain()
    except OSError:
        writer.close()
        raise
    return reader, writer
