"""CONC001 fixture: foreign container mutation, sync lock over await."""

import asyncio
import threading


class Worker:
    def __init__(self):
        self.jobs = {}
        self.lock = threading.Lock()


class Pool:
    def __init__(self):
        self.workers = []

    def steal(self, worker, job_id, future):
        # line 19: CONC001 (item assignment outside the owning class)
        worker.jobs[job_id] = future

    def flush(self, worker):
        # line 23: CONC001 (mutator call outside the owning class)
        worker.jobs.clear()

    async def drain(self, worker):
        # line 27: CONC001 (sync lock held across an await)
        with worker.lock:
            await asyncio.sleep(0)

    def local_is_fine(self):
        jobs = {}
        jobs["local"] = object()
        return jobs
