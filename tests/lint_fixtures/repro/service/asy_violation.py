"""ASY001 fixture: blocking calls on the event loop."""

import time


def write_frame_blocking(stream, frame):
    stream.write(frame)


async def handler(stream, frame):
    time.sleep(0.5)  # line 11: ASY001 (blocking sleep in async def)
    write_frame_blocking(stream, frame)  # line 12: ASY001 (sync frame I/O)

    def off_loop_helper(path):
        # Sync helper: runs via an executor, exempt by design.
        with open(path, "rb") as f:
            return f.read()

    return off_loop_helper
