"""OBS001 fixture: metric-name contract violations, one per call.

A stand-in registry object keeps the fixture import-free; OBS001 keys
on the ``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)`` call
shape with a string-literal name, not on the receiver's type.
"""


def register(registry):
    registry.counter("requests_total", "missing the repro_ prefix")
    registry.counter("repro_requests", "counter without _total")
    registry.histogram("repro_latency_ms", "not a known unit suffix")
    registry.gauge("repro_Hot-Keys", "uppercase and dash in the name")
    registry.gauge("repro_evictions_total", "gauge posing as a counter")
    # Clean registrations must not fire (and neither must unrelated
    # two-argument calls whose first argument is not a name literal).
    registry.counter("repro_requests_total", "clean counter")
    registry.histogram("repro_window_rows", "clean histogram")
    registry.gauge("repro_active_keys", "clean gauge")
    registry.counter(registry, "not a string literal")
