"""RND001 fixture: every banned randomness source, one per line."""

import random  # line 3: RND001 (stdlib random)
import os

from secrets import token_bytes  # line 6: RND001 (secrets)


def draw():
    noise = os.urandom(8)  # line 10: RND001 (kernel entropy)
    return random.random(), token_bytes(4), noise
