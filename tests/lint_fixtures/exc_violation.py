"""EXC001 fixture: broad excepts with and without justification."""


def swallow(fn):
    try:
        return fn()
    except Exception:  # line 7: EXC001 (no annotation)
        return None


def swallow_reasonless(fn):
    try:
        return fn()
    except Exception:  # lint: disable=EXC001
        return None  # line 14-ish: still EXC001 (disable has no reason)


def cleanup_and_reraise(fn, resource):
    try:
        return fn()
    except BaseException:
        resource.close()
        raise  # re-raises bare: exempt, no finding


def justified(fn):
    try:
        return fn()
    except Exception:  # lint: disable=EXC001(fixture: demonstrates a justified boundary)
        return None
