"""Client half of the wire_surface fixture.

Issues a worker-IPC opcode (forbidden) and a phantom opcode (line 1
of this file flags); never issues OP_GHOST.
"""


class Client:
    async def request(self, opcode, body=b""):
        raise NotImplementedError

    async def ping(self):
        return await self.request(OP_PING)

    async def echo(self, body):
        return await self.request(OP_ECHO, body)

    async def orphan(self, body):
        return await self.request(OP_ORPHAN, body)

    async def missing_dispatch(self, body):
        return await self.request(OP_MISSING_DISPATCH, body)

    async def poke_worker(self):
        # WIRE002: worker-IPC opcodes have no public client surface.
        return await self.request(OP_WORKER_LEAKED)

    async def legacy(self):
        # WIRE002: protocol.py defines no OP_RETIRED.
        return await self.request(OP_RETIRED)
