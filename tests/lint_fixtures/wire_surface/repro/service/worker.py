"""Worker half of the wire_surface fixture.

Handles OP_WORKER_LEAKED and OP_PING but never OP_WORKER_LOST — the
hole WIRE002 pins at the constant's definition line in protocol.py.
"""


def main_loop(channel):
    while True:
        opcode, body = channel.recv()
        if opcode == OP_WORKER_LEAKED:
            channel.send(handle_leaked(body))
        elif opcode == OP_PING:
            channel.send(b"pong")
