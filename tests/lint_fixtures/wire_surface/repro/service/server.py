"""Server half of the wire_surface fixture: dispatch with seeded holes.

Dispatches a phantom opcode (line 1 of this file flags) and omits
OP_MISSING_DISPATCH entirely.
"""


class Server:
    async def dispatch(self, opcode, body):
        if opcode == OP_PING:
            return self._respond(STATUS_OK, b"pong")
        if opcode == OP_ECHO:
            return self._respond(STATUS_OK, body)
        if opcode == OP_GHOST:
            return self._respond(STATUS_OK, self._ghost(body))
        if opcode == OP_ORPHAN:
            return self._respond(STATUS_OK, self._orphan(body))
        if opcode == OP_STALE:  # WIRE002: protocol.py defines no OP_STALE
            return self._respond(STATUS_OVERLOADED, b"")
        return self._respond(STATUS_BAD_REQUEST, b"")
