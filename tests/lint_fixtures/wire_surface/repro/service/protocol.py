"""WIRE002/WIRE003/ERR002 fixture: a protocol surface with seeded holes.

This tree (protocol/server/client/worker/errors) indexes as its own
protocol root; every hole below is pinned by line in test_lint.py.
"""

import struct

OP_PING = 0
OP_ECHO = 1
OP_GHOST = 2  # line 11: WIRE002 (no client method issues it)
OP_ORPHAN = 3  # line 12: WIRE002 (missing from OPCODE_NAMES)
OP_MISSING_DISPATCH = 4  # line 13: WIRE002 (no server dispatch branch)
OP_WORKER_LOST = 0x40  # line 14: WIRE002 (never handled in worker.py)
OP_WORKER_LEAKED = 0x41  # line 15: WIRE002 (client method issues it)

OPCODE_NAMES = {
    OP_PING: "ping",
    OP_ECHO: "echo",
    OP_GHOST: "ghost",
    OP_MISSING_DISPATCH: "missing_dispatch",
    OP_WORKER_LOST: "worker_lost",
    OP_WORKER_LEAKED: "worker_leaked",
    OP_PHANTOM: "phantom",  # line 24: WIRE002 (no such opcode constant)
}

STATUS_OK = 0
STATUS_BAD_REQUEST = 1
STATUS_OVERLOADED = 2  # line 29: ERR002 (emitted, never classified)
STATUS_UNUSED = 3


def serialize_note(note):
    # def line 33: WIRE003 (no mirror deserialize_note)
    return struct.pack("!I", len(note)) + note


def encode_frame(kind, value):
    return struct.pack("!IB", value, kind)


def decode_frame(payload):
    # def line 42: WIRE003 (unpacks '!B', absent from encode_frame's '!IB')
    if len(payload) != 5:
        raise ValueError(f"expected exactly 5 bytes, got {len(payload)}")
    (kind,) = struct.unpack("!B", payload[4:])
    (value,) = struct.unpack("!I", payload[:4])
    return kind, value


def pack_item(item):
    return struct.pack("!I", item)


def unpack_item(payload):
    # def line 55: WIRE003 (unpacks struct data without a length guard)
    (item,) = struct.unpack("!I", payload)
    return item
