"""Error half of the wire_surface fixture.

Never classifies STATUS_OVERLOADED (which server.py emits) and keeps a
dead branch for STATUS_UNUSED (which nothing emits).
"""


class RemoteError(Exception):
    pass


class BadRequest(RemoteError):
    pass


class Unused(RemoteError):
    pass


def error_from_status(status, detail):
    if status == STATUS_BAD_REQUEST:
        return BadRequest(detail)
    if status == STATUS_UNUSED:  # line 23: ERR002 (dead branch)
        return Unused(detail)
    return RemoteError(status, detail)
