"""The service layer: framing, coalescer, server/client, loadgen.

asyncio tests are driven through ``asyncio.run`` (no pytest-asyncio
dependency).  End-to-end tests bind port 0 on loopback.
"""

import asyncio
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import P1, seeded_scheme
from repro.core import serialize
from repro.core.kem import SECRET_BYTES
from repro.service import protocol
from repro.service.client import RlweServiceClient
from repro.service.coalescer import MicroBatcher
from repro.service.loadgen import percentile, run_load
from repro.service.protocol import (
    STATUS_BAD_REQUEST,
    STATUS_DECAPSULATION_FAILED,
    STATUS_OK,
    Request,
    Response,
    ServiceError,
)
from repro.service.server import start_server


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_request_roundtrip(self):
        frame = protocol.encode_request(Request(7, protocol.OP_ENCRYPT, b"hi"))
        assert protocol.decode_request(frame[4:]) == Request(
            7, protocol.OP_ENCRYPT, b"hi"
        )

    def test_response_roundtrip(self):
        frame = protocol.encode_response(Response(9, STATUS_OK, b"body"))
        assert protocol.decode_response(frame[4:]) == Response(
            9, STATUS_OK, b"body"
        )

    def test_short_payload_rejected(self):
        with pytest.raises(ValueError):
            protocol.decode_request(b"\x00\x01")

    def test_request_id_range_checked(self):
        with pytest.raises(ValueError):
            protocol.encode_request(Request(1 << 32, 0, b""))

    def test_oversized_payload_rejected(self):
        with pytest.raises(ValueError):
            protocol.encode_request(
                Request(0, 0, b"\x00" * (protocol.MAX_FRAME_BYTES + 1))
            )

    def _reader_with(self, data: bytes, eof: bool = True):
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        if eof:
            reader.feed_eof()
        return reader

    def test_read_frame_roundtrip(self):
        async def scenario():
            frame = protocol.encode_request(Request(3, protocol.OP_PING, b"x"))
            reader = self._reader_with(frame)
            payload = await protocol.read_frame(reader)
            assert protocol.decode_request(payload) == Request(
                3, protocol.OP_PING, b"x"
            )
            assert await protocol.read_frame(reader) is None  # clean EOF

        run(scenario())

    def test_read_frame_truncated_prefix(self):
        async def scenario():
            reader = self._reader_with(b"\x00\x00")
            with pytest.raises(ValueError):
                await protocol.read_frame(reader)

        run(scenario())

    def test_read_frame_truncated_body(self):
        async def scenario():
            reader = self._reader_with(b"\x00\x00\x00\x10abc")
            with pytest.raises(ValueError):
                await protocol.read_frame(reader)

        run(scenario())

    def test_read_frame_hostile_length(self):
        async def scenario():
            reader = self._reader_with(b"\xff\xff\xff\xff" + b"x" * 16)
            with pytest.raises(ValueError):
                await protocol.read_frame(reader)

        run(scenario())


# ----------------------------------------------------------------------
# Coalescer
# ----------------------------------------------------------------------
class TestMicroBatcher:
    def test_flushes_at_max_batch(self):
        batch_sizes = []

        def flush(items):
            batch_sizes.append(len(items))
            return [item * 2 for item in items]

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=4, max_wait=60.0)
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(8))
            )
            assert results == [i * 2 for i in range(8)]

        run(scenario())
        # Eight concurrent submits with a one-minute window: only the
        # size trigger can have flushed them.
        assert batch_sizes == [4, 4]

    def test_flushes_on_timer(self):
        batch_sizes = []

        def flush(items):
            batch_sizes.append(len(items))
            return items

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=1000, max_wait=0.01)
            assert await batcher.submit("lone") == "lone"

        run(scenario())
        assert batch_sizes == [1]

    def test_per_item_exceptions(self):
        def flush(items):
            return [
                ValueError(f"bad {item}") if item % 2 else item
                for item in items
            ]

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=4, max_wait=60.0)
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(4)),
                return_exceptions=True,
            )
            assert results[0] == 0 and results[2] == 2
            assert isinstance(results[1], ValueError)
            assert isinstance(results[3], ValueError)

        run(scenario())

    def test_flush_failure_fails_whole_batch(self):
        def flush(items):
            raise RuntimeError("backend down")

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=2, max_wait=60.0)
            results = await asyncio.gather(
                batcher.submit(1), batcher.submit(2), return_exceptions=True
            )
            assert all(isinstance(r, RuntimeError) for r in results)

        run(scenario())

    def test_stats_and_mean(self):
        def flush(items):
            return items

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=3, max_wait=0.005)
            await asyncio.gather(*(batcher.submit(i) for i in range(7)))
            return batcher

        batcher = run(scenario())
        assert batcher.stats["items"] == 7
        assert batcher.stats["max_batch_seen"] == 3
        assert batcher.mean_batch_size == pytest.approx(
            7 / batcher.stats["flushes"]
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda items: items, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda items: items, max_wait=-1.0)

    def test_max_wait_zero_still_coalesces_concurrent_requests(self):
        batch_sizes = []

        def flush(items):
            batch_sizes.append(len(items))
            return items

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=100, max_wait=0.0)
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(8))
            )
            assert results == list(range(8))

        run(scenario())
        # max_wait=0 yields to the loop once before flushing, so the
        # eight already-concurrent submits land in ONE window.
        assert batch_sizes == [8]

    def test_async_flush_per_item_exceptions(self):
        async def flush(items):
            await asyncio.sleep(0.001)
            return [
                ValueError(f"bad {item}") if item % 2 else item
                for item in items
            ]

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=4, max_wait=60.0)
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(4)),
                return_exceptions=True,
            )
            assert results[0] == 0 and results[2] == 2
            assert isinstance(results[1], ValueError)
            assert isinstance(results[3], ValueError)
            await batcher.drain()

        run(scenario())

    def test_async_flush_failure_fails_only_its_batch(self):
        calls = []

        async def flush(items):
            calls.append(list(items))
            if len(calls) == 1:
                raise RuntimeError("shard down")
            return items

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=2, max_wait=60.0)
            first = asyncio.gather(
                batcher.submit("a"), batcher.submit("b"),
                return_exceptions=True,
            )
            second = asyncio.gather(
                batcher.submit("c"), batcher.submit("d"),
                return_exceptions=True,
            )
            first_results = await first
            second_results = await second
            assert all(
                isinstance(r, RuntimeError) for r in first_results
            )
            assert second_results == ["c", "d"]
            await batcher.drain()

        run(scenario())

    def test_overlapping_async_windows_under_load(self):
        inflight = {"now": 0, "max": 0}

        async def flush(items):
            inflight["now"] += 1
            inflight["max"] = max(inflight["max"], inflight["now"])
            await asyncio.sleep(0.02)
            inflight["now"] -= 1
            return [item * 2 for item in items]

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=4, max_wait=60.0)
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(16))
            )
            assert results == [i * 2 for i in range(16)]
            await batcher.drain()
            return batcher

        batcher = run(scenario())
        # Four full windows flushed while earlier ones were still
        # sleeping: the loop kept coalescing, the flushes overlapped.
        assert batcher.stats["flushes"] == 4
        assert inflight["max"] >= 2
        assert batcher.stats["inflight_max"] >= 2
        assert batcher.inflight_flushes == 0

    def test_drain_resolves_waiters_after_close(self):
        async def flush(items):
            await asyncio.sleep(0.01)
            return items

        async def scenario():
            batcher = MicroBatcher(flush, max_batch=100, max_wait=60.0)
            waiter = asyncio.ensure_future(batcher.submit("x"))
            await asyncio.sleep(0)  # let the submit queue
            batcher.close()  # flush the partial window now
            await batcher.drain()
            assert await waiter == "x"

        run(scenario())


# ----------------------------------------------------------------------
# End-to-end server/client
# ----------------------------------------------------------------------
def _scheme():
    return seeded_scheme(P1, seed=1234)


class TestServerEndToEnd:
    def test_full_operation_matrix(self):
        async def scenario():
            server = await start_server(_scheme(), max_batch=8, max_wait=0.001)
            async with await RlweServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                # ping echoes
                assert await client.ping(b"abc") == b"abc"
                # public key round-trips through the serializer
                public = serialize.deserialize_public_key(
                    await client.get_public_key()
                )
                assert public.params is P1
                # encrypt -> decrypt round trip
                ct = await client.encrypt(b"service e2e")
                assert await client.decrypt(ct, length=11) == b"service e2e"
                # encapsulate -> decapsulate agree on the session key
                key, encapsulation = await client.encapsulate()
                assert len(key) == SECRET_BYTES
                assert await client.decapsulate(encapsulation) == key
            await server.close()

        run(scenario())

    def test_pipelined_requests_coalesce(self):
        async def scenario():
            server = await start_server(
                _scheme(), max_batch=16, max_wait=0.02
            )
            async with await RlweServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                messages = [bytes([i]) * 4 for i in range(16)]
                cts = await asyncio.gather(
                    *(client.encrypt(m) for m in messages)
                )
                plains = await asyncio.gather(
                    *(client.decrypt(ct, length=4) for ct in cts)
                )
                assert plains == messages
            stats = server.service.stats()
            await server.close()
            return stats

        stats = run(scenario())
        # 16 pipelined encrypts against a 16-wide window must have
        # coalesced into far fewer flushes than requests.
        assert stats["ops"]["encrypt"]["items"] == 16
        assert stats["ops"]["encrypt"]["max_batch_seen"] > 1
        assert stats["executor"]["kind"] == "inline"

    def test_error_responses(self):
        async def scenario():
            server = await start_server(_scheme(), max_batch=4, max_wait=0.001)
            async with await RlweServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                # Oversized message
                with pytest.raises(ServiceError) as excinfo:
                    await client.encrypt(b"x" * (P1.message_bytes + 1))
                assert excinfo.value.status == STATUS_BAD_REQUEST
                # Garbage ciphertext
                with pytest.raises(ServiceError) as excinfo:
                    await client.decrypt(b"not a ciphertext")
                assert excinfo.value.status == STATUS_BAD_REQUEST
                # Trailing garbage on a valid ciphertext (the satellite
                # bug, observed through the server)
                ct = await client.encrypt(b"strict")
                with pytest.raises(ServiceError) as excinfo:
                    await client.decrypt(ct + b"JUNK")
                assert excinfo.value.status == STATUS_BAD_REQUEST
                # Tampered encapsulation tag
                key, encapsulation = await client.encapsulate()
                tampered = encapsulation[:-1] + bytes(
                    [encapsulation[-1] ^ 0xFF]
                )
                with pytest.raises(ServiceError) as excinfo:
                    await client.decapsulate(tampered)
                assert excinfo.value.status == STATUS_DECAPSULATION_FAILED
                # Unknown opcode
                with pytest.raises(ServiceError) as excinfo:
                    await client.request(200, b"")
                assert excinfo.value.status == STATUS_BAD_REQUEST
                # The connection survived every error above
                assert await client.ping() == b"ping"
            await server.close()

        run(scenario())

    def test_stats_op_roundtrip(self):
        async def scenario():
            server = await start_server(_scheme(), max_batch=8, max_wait=0.001)
            async with await RlweServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                await asyncio.gather(
                    *(client.encrypt(b"stat") for _ in range(6))
                )
                stats = await client.stats()
                # stats takes an empty body
                with pytest.raises(ServiceError) as excinfo:
                    await client.request(protocol.OP_STATS, b"junk")
                assert excinfo.value.status == STATUS_BAD_REQUEST
            await server.close()
            return stats

        stats = run(scenario())
        assert stats["ops"]["encrypt"]["items"] == 6
        assert stats["ops"]["encrypt"]["mean_batch_size"] > 0
        assert stats["ops"]["encrypt"]["mean_flush_ms"] >= 0
        assert stats["executor"]["kind"] == "inline"

    def test_direct_path_window_one(self):
        async def scenario():
            server = await start_server(_scheme(), max_batch=1)
            assert server.service.direct_path
            async with await RlweServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                ct = await client.encrypt(b"direct")
                assert await client.decrypt(ct, length=6) == b"direct"
                key, encapsulation = await client.encapsulate()
                assert await client.decapsulate(encapsulation) == key
            await server.close()

        run(scenario())

    def test_half_close_still_delivers_pipelined_responses(self):
        # Regression: the server used to close the writer on EOF while
        # request tasks were still waiting on the coalescer window,
        # silently dropping their responses.
        async def scenario():
            server = await start_server(
                _scheme(), max_batch=64, max_wait=0.05
            )
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            for request_id in range(3):
                protocol.write_frame(
                    writer,
                    protocol.encode_request(
                        Request(request_id, protocol.OP_ENCRYPT, b"pipelined")
                    ),
                )
            await writer.drain()
            writer.write_eof()  # half-close: no more requests, await replies
            responses = {}
            for _ in range(3):
                payload = await asyncio.wait_for(
                    protocol.read_frame(reader), timeout=30
                )
                assert payload is not None
                response = protocol.decode_response(payload)
                responses[response.request_id] = response
            writer.close()
            await server.close()
            return responses

        responses = run(scenario())
        assert set(responses) == {0, 1, 2}
        for response in responses.values():
            assert response.status == STATUS_OK
            assert serialize.deserialize_ciphertext(response.body)

    def test_undecodable_frame_uses_reserved_id(self):
        # Regression: the error reply used request id 0, colliding with
        # a legitimate client's first request.
        async def scenario():
            server = await start_server(_scheme(), max_batch=4, max_wait=0.001)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"\x00\x00\x00\x02ab")  # 2-byte payload: no envelope
            await writer.drain()
            payload = await asyncio.wait_for(
                protocol.read_frame(reader), timeout=10
            )
            response = protocol.decode_response(payload)
            writer.close()
            await server.close()
            return response

        response = run(scenario())
        assert response.request_id == protocol.RESERVED_REQUEST_ID
        assert response.status == STATUS_BAD_REQUEST

    def test_multiple_connections(self):
        async def scenario():
            server = await start_server(_scheme(), max_batch=8, max_wait=0.005)
            clients = [
                await RlweServiceClient.connect("127.0.0.1", server.port)
                for _ in range(3)
            ]
            try:
                keys = await asyncio.gather(
                    *(c.encapsulate() for c in clients)
                )
                decapsulated = await asyncio.gather(
                    *(
                        c.decapsulate(encapsulation)
                        for c, (_, encapsulation) in zip(clients, keys)
                    )
                )
                assert decapsulated == [key for key, _ in keys]
            finally:
                for c in clients:
                    await c.close()
            assert server.connections_served == 3
            await server.close()

        run(scenario())


# ----------------------------------------------------------------------
# Loadgen
# ----------------------------------------------------------------------
class TestLoadgen:
    def test_percentile(self):
        values = sorted(float(v) for v in range(1, 101))
        assert percentile(values, 50) == pytest.approx(50.0, abs=1.0)
        assert percentile(values, 99) == pytest.approx(99.0, abs=1.0)
        assert percentile([], 50) == 0.0

    def test_closed_loop_smoke(self):
        async def scenario():
            server = await start_server(_scheme(), max_batch=8, max_wait=0.001)
            result = await run_load(
                "127.0.0.1",
                server.port,
                op="encrypt",
                concurrency=8,
                requests=24,
                message=b"loadgen",
            )
            await server.close()
            return result

        result = run(scenario())
        assert result["completed"] == 24
        assert result["errors"] == 0
        assert result["ops_per_sec"] > 0
        assert result["latency_ms"]["p99"] >= result["latency_ms"]["p50"] > 0

    def test_open_loop_smoke(self):
        async def scenario():
            server = await start_server(_scheme(), max_batch=8, max_wait=0.001)
            result = await run_load(
                "127.0.0.1",
                server.port,
                op="ping",
                mode="open",
                rate=500.0,
                concurrency=1,
                requests=20,
            )
            await server.close()
            return result

        result = run(scenario())
        assert result["completed"] == 20
        assert result["offered_rate"] == 500.0

    def test_decapsulate_op_and_connections(self):
        async def scenario():
            server = await start_server(_scheme(), max_batch=8, max_wait=0.001)
            result = await run_load(
                "127.0.0.1",
                server.port,
                op="decapsulate",
                concurrency=4,
                requests=12,
                connections=2,
            )
            await server.close()
            return result

        result = run(scenario())
        assert result["completed"] == 12
        assert result["errors"] == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            run(run_load("127.0.0.1", 1, mode="sideways"))
        with pytest.raises(ValueError):
            run(run_load("127.0.0.1", 1, concurrency=0))
        with pytest.raises(ValueError):
            run(run_load("127.0.0.1", 1, mode="open", rate=0.0))


# ----------------------------------------------------------------------
# CLI subprocess smoke (serve + loadgen + SIGTERM)
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    sys.platform == "win32", reason="POSIX signal handling"
)
class TestServeCli:
    def test_serve_loadgen_sigterm(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--max-batch",
                "8",
                "--max-wait-ms",
                "1",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = server.stdout.readline()
            assert "serving P1 on" in banner
            port = int(banner.split(":")[-1].split()[0])
            json_path = tmp_path / "loadgen.json"
            loadgen = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "loadgen",
                    "--port",
                    str(port),
                    "--op",
                    "encrypt",
                    "--concurrency",
                    "4",
                    "--requests",
                    "12",
                    "--connect-timeout",
                    "20",
                    "--json",
                    str(json_path),
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=120,
            )
            assert loadgen.returncode == 0, loadgen.stdout + loadgen.stderr
            assert "ops/s" in loadgen.stdout
            assert json_path.exists()
            stats = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "stats",
                    "--port",
                    str(port),
                    "--connect-timeout",
                    "20",
                ],
                env=env,
                capture_output=True,
                text=True,
                timeout=60,
            )
            assert stats.returncode == 0, stats.stdout + stats.stderr
            assert "per-op coalescing (default key):" in stats.stdout
            assert "executor: inline" in stats.stdout
            server.send_signal(signal.SIGTERM)
            out, _ = server.communicate(timeout=30)
            assert server.returncode == 0, out
            assert "shutdown:" in out
        finally:
            if server.poll() is None:
                server.kill()
                server.communicate(timeout=10)
