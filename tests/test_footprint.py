"""Memory-footprint model: Table II RAM decomposition."""

import pytest

from repro.core.params import P1, P2
from repro.machine.footprint import (
    decryption_footprint,
    encryption_footprint,
    keygen_footprint,
    ntt_table_bytes,
    operation_footprints,
    polynomial_buffer_bytes,
    sampler_table_bytes,
)


class TestTableIIRamReproduction:
    """The model reproduces all six paper RAM figures exactly."""

    @pytest.mark.parametrize(
        "params,expected", [(P1, 1596), (P2, 3132)], ids=["P1", "P2"]
    )
    def test_keygen_ram(self, params, expected):
        assert keygen_footprint(params).ram_bytes == expected

    @pytest.mark.parametrize(
        "params,expected", [(P1, 3128), (P2, 6200)], ids=["P1", "P2"]
    )
    def test_encryption_ram(self, params, expected):
        assert encryption_footprint(params).ram_bytes == expected

    @pytest.mark.parametrize(
        "params,expected", [(P1, 2100), (P2, 4148)], ids=["P1", "P2"]
    )
    def test_decryption_ram(self, params, expected):
        assert decryption_footprint(params).ram_bytes == expected


class TestBuffers:
    def test_polynomial_buffer_bytes(self):
        assert polynomial_buffer_bytes(P1, 1) == 512
        assert polynomial_buffer_bytes(P2, 6) == 6144

    def test_ram_doubles_with_n(self):
        # The paper: "RAM requirement increases by approx. 100%".
        for op in (keygen_footprint, encryption_footprint, decryption_footprint):
            ratio = op(P2).ram_bytes / op(P1).ram_bytes
            assert 1.9 < ratio < 2.1


class TestFlashTables:
    def test_sampler_tables_nonzero(self):
        assert sampler_table_bytes(P1) > 0
        # Same 109-column matrix size class: P2 slightly larger (59 rows).
        assert sampler_table_bytes(P2) >= sampler_table_bytes(P1)

    def test_ntt_tables_scale_with_n(self):
        assert ntt_table_bytes(P2) == pytest.approx(
            2 * ntt_table_bytes(P1), rel=0.01
        )

    def test_decryption_needs_no_sampler_tables(self):
        dec = decryption_footprint(P1)
        assert dec.table_flash_bytes == ntt_table_bytes(P1)


class TestAggregation:
    def test_operation_footprints_order(self):
        ops = operation_footprints(P1)
        assert [f.operation for f in ops] == [
            "Key Generation",
            "Encryption",
            "Decryption",
        ]

    def test_str_contains_numbers(self):
        text = str(encryption_footprint(P1))
        assert "3128" in text or "3,128" in text
