"""LP11 security-estimate model."""

import math

import pytest

from repro.analysis.security import (
    estimate_security,
    required_log2_delta,
    required_vector_length,
    security_margin_ratio,
)
from repro.core.params import P1, P2, custom_parameter_set


class TestPaperLabels:
    def test_p1_medium_term_regime(self):
        """P1 lands around 100 bits under the LP11 model — the 2011-era
        'medium-term' designation."""
        est = estimate_security(P1)
        assert 85 < est.bit_security < 130

    def test_p2_long_term_regime(self):
        est = estimate_security(P2)
        assert est.bit_security > 200

    def test_p2_much_stronger_than_p1(self):
        assert security_margin_ratio(P1, P2) > 2.0

    def test_delta_regime(self):
        # Plausible BKZ root-Hermite factors sit in (1.004, 1.013).
        for params in (P1, P2):
            est = estimate_security(params)
            assert 1.003 < est.delta < 1.013


class TestModelStructure:
    def test_vector_length_formula(self):
        length = required_vector_length(P1, advantage=2.0**-64)
        expected = (P1.q / P1.s) * math.sqrt(64 * math.log(2) / math.pi)
        assert length == pytest.approx(expected)

    def test_smaller_advantage_needs_longer_vector(self):
        assert required_vector_length(P1, 2.0**-80) > required_vector_length(
            P1, 2.0**-40
        )

    def test_larger_dimension_helps_defender(self):
        # Same q and s, doubled n: harder for the attacker.
        big = custom_parameter_set(512, 12289, 12.18)
        small = custom_parameter_set(256, 12289, 12.18)
        assert required_log2_delta(big) < required_log2_delta(small)

    def test_wider_noise_helps_defender(self):
        narrow = custom_parameter_set(256, 7681, 8.0)
        wide = custom_parameter_set(256, 7681, 16.0)
        assert (
            estimate_security(wide).bit_security
            > estimate_security(narrow).bit_security
        )

    def test_larger_modulus_helps_attacker(self):
        # At fixed n and s, a larger q makes LWE easier.
        small_q = custom_parameter_set(256, 7681, 11.31)
        big_q = custom_parameter_set(256, 40961, 11.31)  # 40960 = 2^13*5
        assert (
            estimate_security(big_q).bit_security
            < estimate_security(small_q).bit_security
        )

    def test_advantage_validation(self):
        with pytest.raises(ValueError):
            required_vector_length(P1, 0.0)
        with pytest.raises(ValueError):
            required_vector_length(P1, 1.5)

    def test_str_mentions_operations(self):
        assert "operations" in str(estimate_security(P1))
