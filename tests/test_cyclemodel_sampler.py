"""Cycle-model Knuth-Yao sampler: exactness and the optimization ladder."""

import pytest

from repro.core.params import P1, P2
from repro.cyclemodel.sampler_cycles import (
    CycleKnuthYaoSampler,
    sample_polynomial_cycles,
)
from repro.machine.machine import CortexM4
from repro.sampler.knuth_yao import KnuthYaoSampler
from repro.sampler.lut_sampler import LutKnuthYaoSampler
from repro.sampler.pmat import ProbabilityMatrix
from repro.trng.bitpool import BitPool
from repro.trng.bitsource import PrngBitSource
from repro.trng.trng import SimulatedTrng
from repro.trng.xorshift import Xorshift128


@pytest.fixture(scope="module")
def pmat():
    return ProbabilityMatrix.for_params(P1)


def cycle_sampler(pmat, seed=0, machine=None, **options):
    machine = machine if machine is not None else CortexM4()
    return (
        CycleKnuthYaoSampler(
            pmat, P1.q, machine, PrngBitSource(Xorshift128(seed)), **options
        ),
        machine,
    )


class TestBitExactness:
    @pytest.mark.parametrize("scan", ["bitwise", "clz"])
    @pytest.mark.parametrize("skip", [False, True])
    def test_plain_walk_matches_alg1(self, pmat, scan, skip):
        for seed in range(60):
            ref = KnuthYaoSampler(pmat, P1.q, PrngBitSource(Xorshift128(seed)))
            model, _ = cycle_sampler(
                pmat, seed, scan=scan, skip_zero_words=skip,
                use_lut1=False, use_lut2=False,
            )
            assert model.sample() == ref.sample()

    def test_hamming_weight_mode_matches_alg1(self, pmat):
        """[6]'s column-skipping is a pure cost optimization: same
        outputs as the plain walk for every stream."""
        for seed in range(60):
            ref = KnuthYaoSampler(pmat, P1.q, PrngBitSource(Xorshift128(seed)))
            model, _ = cycle_sampler(
                pmat, seed, use_hamming_weights=True,
                use_lut1=False, use_lut2=False,
            )
            assert model.sample() == ref.sample()

    def test_lut_path_matches_alg2_sequence(self, pmat):
        """With identical streams the cycle model must replicate the
        functional LUT sampler sample-for-sample (same bit consumption
        order), not just per-sample."""
        ref = LutKnuthYaoSampler(pmat, P1.q, PrngBitSource(Xorshift128(77)))
        model, _ = cycle_sampler(pmat, 77)
        assert model.sample_polynomial(500) == ref.sample_polynomial(500)

    def test_lut1_only_matches_functional(self, pmat):
        ref = LutKnuthYaoSampler(
            pmat, P1.q, PrngBitSource(Xorshift128(78)), use_lut2=False
        )
        model, _ = cycle_sampler(pmat, 78, use_lut2=False)
        assert model.sample_polynomial(500) == ref.sample_polynomial(500)


class TestOptimizationLadder:
    """Each optimization of Section III-B must strictly pay off."""

    @pytest.fixture(scope="class")
    def ladder(self, pmat):
        configs = {
            "bitwise": dict(
                scan="bitwise", skip_zero_words=False,
                use_lut1=False, use_lut2=False,
            ),
            "trimmed": dict(
                scan="bitwise", skip_zero_words=True,
                use_lut1=False, use_lut2=False,
            ),
            "clz": dict(
                scan="clz", skip_zero_words=True,
                use_lut1=False, use_lut2=False,
            ),
            "hamming": dict(
                scan="bitwise", skip_zero_words=True,
                use_hamming_weights=True,
                use_lut1=False, use_lut2=False,
            ),
            "lut1": dict(
                scan="clz", skip_zero_words=True,
                use_lut1=True, use_lut2=False,
            ),
            "lut2": dict(
                scan="clz", skip_zero_words=True,
                use_lut1=True, use_lut2=True,
            ),
        }
        costs = {}
        for name, cfg in configs.items():
            sampler, machine = cycle_sampler(pmat, seed=5, **cfg)
            sampler.sample_polynomial(512)
            costs[name] = machine.cycles / 512
        return costs

    def test_zero_word_trimming_pays(self, ladder):
        assert ladder["trimmed"] < ladder["bitwise"] / 2

    def test_clz_scanning_pays(self, ladder):
        assert ladder["clz"] < ladder["trimmed"] / 3

    def test_hamming_weights_pay_but_less_than_clz(self, ladder):
        """Both column-skipping strategies beat the naive scan; the
        paper's clz proposal beats [6]'s Hamming weights when each is
        applied alone (clz skips zero *bits* everywhere, weights skip
        whole columns only)."""
        assert ladder["hamming"] < ladder["trimmed"]
        assert ladder["clz"] < ladder["hamming"]

    def test_lut1_pays(self, ladder):
        assert ladder["lut1"] < ladder["clz"] / 2

    def test_lut2_refines_lut1(self, ladder):
        assert ladder["lut2"] <= ladder["lut1"]

    def test_full_config_near_paper(self, ladder):
        # Paper: 28.5 cycles/sample including TRNG accesses; without the
        # bit-pool machinery the pure-PRNG figure sits lower.
        assert 10 < ladder["lut2"] < 40


class TestWithBitPool:
    @pytest.mark.parametrize(
        "params,paper", [(P1, 7294), (P2, 14604)], ids=["P1", "P2"]
    )
    def test_table1_sampling_row(self, params, paper):
        machine = CortexM4()
        pool = BitPool(
            SimulatedTrng(Xorshift128(1), machine=machine), machine=machine
        )
        _, cycles = sample_polynomial_cycles(params, machine, pool)
        assert 0.7 * paper < cycles < 1.3 * paper

    def test_per_sample_rate_stable_across_params(self):
        rates = []
        for params in (P1, P2):
            machine = CortexM4()
            pool = BitPool(
                SimulatedTrng(Xorshift128(2), machine=machine),
                machine=machine,
            )
            _, cycles = sample_polynomial_cycles(params, machine, pool)
            rates.append(cycles / params.n)
        # Paper: 28.5 cycles/sample "for both parameter sets".
        assert abs(rates[0] - rates[1]) < 2.0


class TestConfiguration:
    def test_lut2_requires_lut1(self, pmat):
        with pytest.raises(ValueError):
            cycle_sampler(pmat, 0, use_lut1=False, use_lut2=True)

    def test_unknown_scan_mode(self, pmat):
        with pytest.raises(ValueError):
            cycle_sampler(pmat, 0, scan="simd")

    def test_hit_counters(self, pmat):
        sampler, _ = cycle_sampler(pmat, 3)
        n = 2000
        sampler.sample_polynomial(n)
        assert sampler.samples_drawn == n
        assert (
            sampler.lut1_hits + sampler.lut2_hits + sampler.scan_fallbacks
            == n
        )
