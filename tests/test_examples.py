"""Smoke tests: every example script runs cleanly."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "secure_channel.py",
    "sampler_analysis.py",
    "kem_handshake.py",
    "multi_tenant.py",
]
SLOW_EXAMPLES = [
    "cycle_profile.py",
    "parameter_exploration.py",
]
#: Examples migrated to the RlweSession facade; each keeps its
#: pre-facade code path alive behind --legacy, and both must run.
MIGRATED_EXAMPLES = [
    "quickstart.py",
    "secure_channel.py",
    "kem_handshake.py",
]


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_examples(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_examples(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr


@pytest.mark.parametrize("name", MIGRATED_EXAMPLES)
def test_legacy_example_variants(name):
    """The pre-facade API paths stay covered behind --legacy."""
    result = run_example(name, "--legacy")
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_quickstart_reports_roundtrip():
    result = run_example("quickstart.py")
    assert result.stdout.count("roundtrip OK") == 2
    assert "engine=local" in result.stdout


def test_secure_channel_runs_over_tcp():
    result = run_example("secure_channel.py")
    assert result.returncode == 0, result.stderr
    assert "tcp://127.0.0.1:" in result.stdout
    assert "secure channel OK" in result.stdout


def test_cycle_profile_p2():
    result = run_example("cycle_profile.py", "P2")
    assert result.returncode == 0, result.stderr
    assert "P2" in result.stdout
    assert "Table II reproduction" in result.stdout


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "paper_tables.py"} <= present
    assert len(present) >= 5
