"""Alg. 3 reference NTT against the naive negacyclic DFT oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import P1, P2
from repro.ntt.reference import (
    negacyclic_dft,
    negacyclic_idft,
    ntt_forward,
    ntt_inverse,
)
from tests.conftest import SMALL


def small_poly():
    return st.lists(
        st.integers(min_value=0, max_value=SMALL.q - 1),
        min_size=SMALL.n,
        max_size=SMALL.n,
    )


class TestOracleAgreement:
    @given(small_poly())
    @settings(max_examples=50, deadline=None)
    def test_forward_equals_naive_dft(self, a):
        assert ntt_forward(a, SMALL) == negacyclic_dft(a, SMALL)

    @given(small_poly())
    @settings(max_examples=50, deadline=None)
    def test_inverse_equals_naive_idft(self, a_hat):
        assert ntt_inverse(a_hat, SMALL) == negacyclic_idft(a_hat, SMALL)


class TestRoundTrip:
    @given(small_poly())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_small(self, a):
        assert ntt_inverse(ntt_forward(a, SMALL), SMALL) == a

    @pytest.mark.parametrize("params", [P1, P2], ids=["P1", "P2"])
    def test_roundtrip_paper_params(self, params, poly_factory):
        a = poly_factory(params)
        assert ntt_inverse(ntt_forward(a, params), params) == a

    @pytest.mark.parametrize("params", [P1, P2], ids=["P1", "P2"])
    def test_reverse_roundtrip(self, params, poly_factory):
        a_hat = poly_factory(params)
        assert ntt_forward(ntt_inverse(a_hat, params), params) == a_hat


class TestAlgebraicStructure:
    def test_transform_of_zero(self):
        zeros = [0] * SMALL.n
        assert ntt_forward(zeros, SMALL) == zeros
        assert ntt_inverse(zeros, SMALL) == zeros

    def test_transform_of_delta(self):
        # delta at x^0 evaluates to 1 everywhere.
        delta = [1] + [0] * (SMALL.n - 1)
        assert ntt_forward(delta, SMALL) == [1] * SMALL.n

    def test_transform_of_x(self):
        # x evaluates to psi^(2i+1) at evaluation point i.
        x = [0, 1] + [0] * (SMALL.n - 2)
        q, psi = SMALL.q, SMALL.psi
        assert ntt_forward(x, SMALL) == [
            pow(psi, 2 * i + 1, q) for i in range(SMALL.n)
        ]

    @given(small_poly(), small_poly())
    @settings(max_examples=30, deadline=None)
    def test_linearity(self, a, b):
        q = SMALL.q
        summed = [(x + y) % q for x, y in zip(a, b)]
        fa, fb = ntt_forward(a, SMALL), ntt_forward(b, SMALL)
        assert ntt_forward(summed, SMALL) == [
            (x + y) % q for x, y in zip(fa, fb)
        ]

    def test_negacyclic_wraparound_property(self):
        # Multiplying by x in the ring rotates with sign flip; verify via
        # the transform: NTT(x * a)_i = psi^(2i+1) * NTT(a)_i.
        import random

        rng = random.Random(1)
        a = [rng.randrange(SMALL.q) for _ in range(SMALL.n)]
        shifted = [(-a[-1]) % SMALL.q] + a[:-1]
        fa = ntt_forward(a, SMALL)
        fs = ntt_forward(shifted, SMALL)
        q, psi = SMALL.q, SMALL.psi
        assert fs == [
            pow(psi, 2 * i + 1, q) * fa[i] % q for i in range(SMALL.n)
        ]


class TestInputValidation:
    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            ntt_forward([0] * 10, SMALL)
        with pytest.raises(ValueError):
            ntt_inverse([0] * 10, SMALL)

    def test_coefficients_normalised_mod_q(self):
        a = [SMALL.q + 1] + [0] * (SMALL.n - 1)
        assert ntt_forward(a, SMALL) == ntt_forward(
            [1] + [0] * (SMALL.n - 1), SMALL
        )
