"""Tests for the bit-reversal permutation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ntt.bitrev import (
    bit_reverse_copy,
    bit_reverse_index,
    bit_reverse_inplace,
    bit_reverse_table,
)


class TestBitReverseIndex:
    def test_known_values(self):
        assert bit_reverse_index(0b001, 3) == 0b100
        assert bit_reverse_index(0b110, 3) == 0b011
        assert bit_reverse_index(1, 8) == 128

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            bit_reverse_index(8, 3)
        with pytest.raises(ValueError):
            bit_reverse_index(-1, 3)

    @given(st.integers(min_value=1, max_value=12), st.data())
    @settings(max_examples=100)
    def test_involution(self, bits, data):
        index = data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
        assert bit_reverse_index(bit_reverse_index(index, bits), bits) == index


class TestBitReverseTable:
    @pytest.mark.parametrize("n", [2, 4, 16, 256, 512])
    def test_is_permutation(self, n):
        table = bit_reverse_table(n)
        assert sorted(table) == list(range(n))

    @pytest.mark.parametrize("n", [0, 3, 6, 100])
    def test_rejects_non_power_of_two(self, n):
        with pytest.raises(ValueError):
            bit_reverse_table(n)

    def test_table_matches_index(self):
        table = bit_reverse_table(16)
        assert all(table[i] == bit_reverse_index(i, 4) for i in range(16))


class TestBitReverseCopy:
    def test_known_permutation_n8(self):
        assert bit_reverse_copy(list(range(8))) == [0, 4, 2, 6, 1, 5, 3, 7]

    @pytest.mark.parametrize("n", [4, 64, 256])
    def test_copy_is_involution(self, n):
        values = list(range(n))
        assert bit_reverse_copy(bit_reverse_copy(values)) == values

    def test_inplace_matches_copy(self):
        values = list(range(128))
        expected = bit_reverse_copy(values)
        bit_reverse_inplace(values)
        assert values == expected
