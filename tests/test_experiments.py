"""Experiment drivers: every table/figure regenerates with the right shape."""

import pytest

from repro.analysis import experiments
from repro.core.params import P1, P2


@pytest.fixture(scope="module")
def major_p1():
    return experiments.measure_major_operations(P1, seed=1)


@pytest.fixture(scope="module")
def scheme_p1():
    return experiments.measure_scheme_operations(P1, seed=1)


class TestTable1:
    def test_all_rows_present(self, major_p1):
        assert set(major_p1.measured) == set(major_p1.paper)
        assert len(major_p1.measured) == 5

    def test_within_paper_band(self, major_p1):
        for op, measured in major_p1.measured.items():
            paper = major_p1.paper[op]
            assert 0.5 * paper < measured < 1.5 * paper, op

    def test_parallel_beats_three_transforms(self, major_p1):
        assert (
            major_p1.measured["Parallel NTT transform"]
            < 3 * major_p1.measured["NTT transform"]
        )

    def test_cached(self):
        a = experiments.measure_major_operations(P1, seed=1)
        b = experiments.measure_major_operations(P1, seed=1)
        assert a is b

    def test_render(self):
        text = experiments.table1(seed=1)
        assert "Table I" in text
        assert "NTT multiplication [P2]" in text


class TestTable2:
    def test_operations_present(self, scheme_p1):
        assert set(scheme_p1.cycles) == {
            "Key Generation",
            "Encryption",
            "Decryption",
        }

    def test_ram_matches_paper_exactly(self, scheme_p1):
        for op, (braces, flash, ram) in scheme_p1.paper.items():
            assert scheme_p1.ram_bytes[op] == ram

    def test_encryption_within_band(self, scheme_p1):
        paper_cycles = scheme_p1.paper["Encryption"][0]
        assert 0.85 * paper_cycles < scheme_p1.cycles["Encryption"] < 1.15 * paper_cycles

    def test_render(self):
        text = experiments.table2(seed=1)
        assert "Table II" in text and "Decryption [P2]" in text


class TestTables3And4:
    def test_table3_includes_literature_and_ours(self):
        text = experiments.table3(seed=1)
        assert "[10]" in text and "cycle model (this repro)" in text

    def test_table3_headline_factors(self):
        factors = experiments.table3_headline_factors(seed=1)
        # our P2-sized NTT beats [10]'s by >2x on the cycle model
        assert factors["ntt_vs_oder_p3"] < 0.75
        # sampler at least 7x faster than the best prior software sampler
        assert factors["sampler_speedup_vs_best_software"] > 7.0

    def test_table4_headline_factors(self):
        factors = experiments.table4_headline_factors(seed=1)
        assert factors["encrypt_vs_arm7tdmi"] > 7.0  # paper: 7.25
        assert factors["decrypt_vs_arm7tdmi"] > 5.0  # paper: 5.22
        assert factors["ecies_vs_encrypt"] > 10.0  # "order of magnitude"

    def test_table4_render(self):
        text = experiments.table4(seed=1)
        assert "ECIES" in text and "ARM7TDMI" in text


class TestFigures:
    def test_fig1_reproduces_matrix_shape(self):
        text = experiments.fig1()
        assert "55" in text and "109" in text and "5,995" in text

    def test_fig2_anchors(self):
        text = experiments.fig2()
        assert "97.2" in text  # level-8 anchor
        assert "99.8" in text  # level-13 anchor

    def test_fig2_other_params(self):
        text = experiments.fig2(P2)
        assert "P2" in text
