"""Probability-matrix construction and storage optimizations."""

import pytest

from repro.core.params import P1, P2
from repro.sampler.distribution import DiscreteGaussian
from repro.sampler.pmat import DEFAULT_PRECISION, ProbabilityMatrix, paper_tail


@pytest.fixture(scope="module")
def pmat_p1():
    return ProbabilityMatrix.for_params(P1)


class TestPaperShape:
    """The concrete numbers Section III-B reports for s = 11.31."""

    def test_dimensions(self, pmat_p1):
        assert pmat_p1.rows == 55
        assert pmat_p1.columns == 109

    def test_total_bits(self, pmat_p1):
        assert pmat_p1.total_bits == 5995  # paper: "5995 bits"

    def test_word_counts(self, pmat_p1):
        assert pmat_p1.words_per_column == 2
        assert pmat_p1.total_words == 218  # paper: 218
        # paper: 180 stored; ours lands within a few words (rounding of
        # the last probability bits differs from the authors' tool).
        assert 170 <= pmat_p1.stored_words <= 184

    def test_level_coverage(self, pmat_p1):
        # 97.27% of walks end within 8 levels, 99.87% within 13.
        acc = 0.0
        for col in range(13):
            acc += pmat_p1.hamming_weights[col] / 2.0 ** (col + 1)
            if col == 7:
                assert acc == pytest.approx(0.9727, abs=5e-4)
        assert acc == pytest.approx(0.9987, abs=5e-4)


class TestMatrixSemantics:
    def test_bit_matches_probability_expansion(self, pmat_p1):
        probs = pmat_p1.table.probabilities
        cols = pmat_p1.columns
        for row in (0, 1, 7, 54):
            for col in (0, 5, 50, 108):
                expected = (probs[row] >> (cols - 1 - col)) & 1
                assert pmat_p1.bit(row, col) == expected

    def test_column_bits_consistent_with_words(self, pmat_p1):
        for col in (0, 3, 60):
            bits = pmat_p1.column_bits(col)
            weight = sum(bits)
            assert weight == pmat_p1.hamming_weights[col]

    def test_index_validation(self, pmat_p1):
        with pytest.raises(IndexError):
            pmat_p1.bit(55, 0)
        with pytest.raises(IndexError):
            pmat_p1.bit(0, 109)

    def test_zero_word_map_matches_counts(self, pmat_p1):
        flags = pmat_p1.zero_word_map()
        zero_count = sum(1 for col in flags for is_zero in col if is_zero)
        assert zero_count == pmat_p1.total_words - pmat_p1.stored_words

    def test_bottom_left_corner_is_zero(self, pmat_p1):
        # Early columns cannot touch large magnitudes: P[54][0..7] = 0.
        for col in range(8):
            assert pmat_p1.bit(54, col) == 0


class TestConstruction:
    def test_paper_tail_values(self):
        assert paper_tail(P1.sigma) == 54  # rows = 55
        assert paper_tail(P2.sigma) == 58  # rows = 59

    def test_for_params_cached(self):
        assert ProbabilityMatrix.for_params(P1) is ProbabilityMatrix.for_params(P1)

    def test_for_sigma_custom_tail(self):
        pm = ProbabilityMatrix.for_sigma(2.0, precision=32, tail=12)
        assert pm.rows == 13
        assert pm.columns == 32

    def test_default_precision(self):
        assert DEFAULT_PRECISION == 109

    def test_from_table(self):
        table = DiscreteGaussian(sigma=2.0).half_table(24, 10)
        pm = ProbabilityMatrix.from_table(table)
        assert pm.rows == 11
        assert pm.columns == 24
        assert sum(pm.hamming_weights[c] / 2 ** (c + 1) for c in range(24)) == 1.0


class TestStorage:
    def test_storage_bytes(self, pmat_p1):
        expected = 4 * pmat_p1.stored_words + pmat_p1.columns
        assert pmat_p1.storage_bytes() == expected

    def test_render_corner_shape(self, pmat_p1):
        corner = pmat_p1.render_corner(rows=4, cols=6)
        lines = corner.splitlines()
        assert len(lines) == 4
        assert all(len(line.split()) == 6 for line in lines)

    def test_p2_matrix_larger(self):
        pm2 = ProbabilityMatrix.for_params(P2)
        assert pm2.rows == 59
        assert pm2.columns == 109
